// Dataflow tile scheduler: dependency-driven execution of the wavefront
// tile graph, replacing the external-diagonal barrier (ROADMAP item 2).
//
// The lockstep executor dispatches one external diagonal at a time, so every
// diagonal is a full barrier: one slow tile (pruned neighborhood, cold SRA
// flush, checkpoint fsync) stalls the whole pool. Here each tile (s, b) of
// the strips x blocks grid instead carries an atomic dependency counter —
// one unit per published input bus, left (s, b-1) and top (s-1, b) — and
// becomes runnable the moment the counter hits zero. Workers pull from
// per-thread work-stealing deques (bounded Chase-Lev; see WorkStealingDeque)
// seeded with tile (0, 0); completing a tile decrements its right and down
// successors and pushes any that became ready onto the finisher's own deque,
// so the frontier advances with no global synchronization at all.
//
// Three pieces of protocol on top of the bare DAG:
//
//   * Row-completion watermark. Strips still *retire* in order: the caller
//     thread (the driver) is woken as each strip's last tile completes and
//     runs `strip_done(s)` for s = 0, 1, 2, ... — the row watermark. All
//     deterministic post-processing (stats folds, best merges, special-row
//     flushes, checkpoint cursors) happens there, in a fixed order that does
//     not depend on the execution interleaving.
//   * Window gating. Tile (s, 0) is withheld (parked) until
//     s <= watermark + window. This bounds in-flight strips to window + 1,
//     which in turn bounds every per-strip resource the executor rotates
//     (vertical-bus planes, result slots, pending special rows) — without it
//     a depth-first column-0 chain could activate O(strips) strips.
//   * Epoch-based quiescence. Completion is a monotone epoch counter
//     (tiles_done); workers spin down when it reaches the tile total or when
//     the stop flag rises (driver early-stop or a worker exception — the
//     first exception is captured and rethrown on the caller after all
//     workers have drained).
//
// Memory ordering: the dependency decrement is fetch_sub(acq_rel), so the
// worker that observes a counter hit zero has acquired every write both
// predecessor tiles published (bus segments, result slots); deque push/steal
// adds the usual release/acquire edge to whichever worker actually runs the
// tile. The per-strip remaining-tiles counter gives the driver the same
// guarantee for whole strips. Everything a tile writes may therefore be
// plain (non-atomic) data. Every seq_cst or relaxed site in sched.cpp
// carries a `// order:` justification, and the run state's mutex-protected
// fields are CUDALIGN_GUARDED_BY-annotated — both enforced statically by
// cudalint's explicit-memory-order and guarded-by rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace cudalign::engine::sched {

/// Bounded single-owner work-stealing deque (Chase-Lev). The owner pushes
/// and pops at the bottom (LIFO); thieves steal from the top (FIFO). Fixed
/// power-of-two capacity: push() returns false when full and the caller
/// falls back to the shared injector queue, so the classic (fiddly) buffer
/// growth protocol is not needed. Elements are stored in atomic slots so the
/// benign push/steal overlap is data-race-free under TSan.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t capacity_pow2);

  /// Owner only. False = full (caller reroutes to the injector).
  bool push(std::int64_t value);
  /// Owner only. False = empty.
  bool pop(std::int64_t* out);
  /// Any thread. False = empty or lost the race for the last element.
  bool steal(std::int64_t* out);

 private:
  std::vector<std::atomic<std::int64_t>> buffer_;
  std::int64_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

struct SchedOptions {
  Index strips = 0;
  Index blocks = 0;
  int workers = 1;
  /// Strips past the watermark allowed in flight (window gating above).
  Index window = 8;
};

/// Scheduler-level counters folded into RunStats (and from there into the
/// run report) — the dataflow replacement for the lockstep diagonal profile.
struct SchedStats {
  std::int64_t tiles_executed = 0;
  std::int64_t tiles_stolen = 0;     ///< Tiles taken off another worker's deque.
  std::int64_t starvation_waits = 0; ///< Idle scans that found every source empty.
};

/// Executes `body(s, b, worker)` for every tile of the grid, honoring the
/// left + top dependency edges. `strip_done(s)` runs on the *caller* thread
/// in ascending strip order as strips complete (the row watermark);
/// returning false stops the run (remaining tiles are abandoned). Worker
/// threads are spawned per call — the executor's thread pool cannot host
/// them because its caller participates in every parallel_for, and here the
/// caller must stay free to act as the driver. Exceptions thrown by `body`
/// or `strip_done` stop the run and are rethrown on the caller.
SchedStats run_tile_graph(const SchedOptions& options,
                          const std::function<void(Index s, Index b, int worker)>& body,
                          const std::function<bool(Index s)>& strip_done);

}  // namespace cudalign::engine::sched
