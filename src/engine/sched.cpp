#include "engine/sched.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "check/annotations.hpp"
#include "check/contracts.hpp"

namespace cudalign::engine::sched {

namespace {

std::size_t ceil_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

WorkStealingDeque::WorkStealingDeque(std::size_t capacity_pow2)
    : buffer_(ceil_pow2(capacity_pow2)), mask_(static_cast<std::int64_t>(buffer_.size()) - 1) {}

bool WorkStealingDeque::push(std::int64_t value) {
  // order: relaxed — bottom_ is only written by the owner; this is its own last value.
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t > mask_) return false;  // Full; caller reroutes to the injector.
  // order: relaxed — the release store of bottom_ below publishes the slot to thieves.
  buffer_[static_cast<std::size_t>(b & mask_)].store(value, std::memory_order_relaxed);
  bottom_.store(b + 1, std::memory_order_release);
  return true;
}

bool WorkStealingDeque::pop(std::int64_t* out) {
  // order: relaxed — owner-only bottom_; the seq_cst fence below does the ordering.
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // order: seq_cst — the fence must totally order the bottom_ store against the
  // thieves' top_ reads; weaker fences let pop and steal both claim the element.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // order: relaxed — the fence above already orders this top_ read.
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {  // Was empty: restore bottom.
    // order: relaxed — owner-only restore; thieves gate on top_, not bottom_.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  // order: relaxed — the slot value was published by this owner's own push.
  *out = buffer_[static_cast<std::size_t>(b & mask_)].load(std::memory_order_relaxed);
  if (t < b) return true;  // More than one element left: no race possible.
  // Single element: race the thieves for it via top.
  // order: seq_cst CAS joins the fence total order; relaxed on failure (t is discarded).
  const bool won =
      top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  // order: relaxed — owner-only reset; the next push's release publishes it.
  bottom_.store(b + 1, std::memory_order_relaxed);
  return won;
}

bool WorkStealingDeque::steal(std::int64_t* out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  // order: seq_cst — pairs with pop's fence: a thief must observe either the
  // shrunken bottom_ or the owner's CAS; weaker orders let both claim the tile.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;
  // order: relaxed — the acquire load of top_ above published this slot.
  const std::int64_t value = buffer_[static_cast<std::size_t>(t & mask_)].load(std::memory_order_relaxed);
  // order: seq_cst CAS claims the slot in the fence total order; relaxed failure rescans.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return false;  // Lost to the owner's pop or another thief; caller rescans.
  }
  *out = value;
  return true;
}

namespace {

/// Shared run state. Tiles are identified as s * blocks + b.
struct GraphRun {
  SchedOptions opt;
  std::int64_t total = 0;

  /// Unsatisfied inputs per tile: (s > 0) + (b > 0).
  std::vector<std::atomic<std::uint8_t>> deps;
  /// Remaining tiles per strip (for the watermark hand-off to the driver).
  std::vector<std::atomic<Index>> strip_left;

  /// std::deque, not vector: WorkStealingDeque holds atomics and is immovable.
  std::deque<WorkStealingDeque> deques;

  /// Injector + window gate, one mutex: deque-overflow spillover, parked
  /// column-0 tiles, and the published watermark the gate tests against.
  std::mutex queue_mutex;
  std::deque<std::int64_t> injector CUDALIGN_GUARDED_BY(queue_mutex);
  /// Ascending (column-0 readiness arrives in order).
  std::deque<Index> parked CUDALIGN_GUARDED_BY(queue_mutex);
  /// Strips retired by the driver.
  Index watermark CUDALIGN_GUARDED_BY(queue_mutex) = 0;

  /// Quiescence epoch + stop flag (early stop or captured exception).
  std::atomic<std::int64_t> tiles_done{0};
  std::atomic<bool> stop{false};

  /// Driver wake-up: strip completion flags and the first captured error.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::vector<std::uint8_t> strip_complete CUDALIGN_GUARDED_BY(done_mutex);
  std::exception_ptr error CUDALIGN_GUARDED_BY(done_mutex);

  std::mutex stats_mutex;
  SchedStats stats CUDALIGN_GUARDED_BY(stats_mutex);

  const std::function<void(Index, Index, int)>* body = nullptr;

  void fail(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (!error) error = std::move(e);
    }
    stop.store(true, std::memory_order_release);
    done_cv.notify_all();
  }

  void inject(std::int64_t tile) {
    std::lock_guard<std::mutex> lock(queue_mutex);
    injector.push_back(tile);
  }

  void enqueue(int worker, std::int64_t tile) {
    if (!deques[static_cast<std::size_t>(worker)].push(tile)) inject(tile);
  }

  /// Tile (s, 0) just became dependency-free; admit it only if the strip is
  /// inside the watermark window, otherwise park it for the driver.
  void gate_strip(int worker, Index s) {
    bool ready;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      ready = s <= watermark + opt.window;
      if (!ready) parked.push_back(s);
    }
    if (ready) enqueue(worker, s * opt.blocks);
  }

  void execute(std::int64_t tile, int worker) {
    const Index s = tile / opt.blocks;
    const Index b = tile % opt.blocks;
    try {
      (*body)(s, b, worker);
    } catch (...) {
      // Successors stay blocked (their inputs were never published); the
      // driver observes the error and stops the run.
      fail(std::current_exception());
      return;
    }
    // Release successors: the acq_rel decrement hands the tile's bus writes
    // to whichever worker observes the counter reach zero.
    if (b + 1 < opt.blocks &&
        deps[static_cast<std::size_t>(tile + 1)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      enqueue(worker, tile + 1);
    }
    if (s + 1 < opt.strips) {
      const std::int64_t down = tile + opt.blocks;
      if (deps[static_cast<std::size_t>(down)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (b == 0) {
          gate_strip(worker, s + 1);
        } else {
          enqueue(worker, down);
        }
      }
    }
    tiles_done.fetch_add(1, std::memory_order_release);
    if (strip_left[static_cast<std::size_t>(s)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      strip_complete[static_cast<std::size_t>(s)] = 1;
      done_cv.notify_all();
    }
  }

  bool pop_injector(std::int64_t* out) {
    std::lock_guard<std::mutex> lock(queue_mutex);
    if (injector.empty()) return false;
    *out = injector.front();
    injector.pop_front();
    return true;
  }

  void worker_loop(int w) {
    SchedStats local;
    int idle_spins = 0;
    for (;;) {
      std::int64_t tile = -1;
      if (!deques[static_cast<std::size_t>(w)].pop(&tile)) {
        tile = -1;
        if (!pop_injector(&tile)) {
          tile = -1;
          for (int i = 1; i < opt.workers; ++i) {
            if (deques[static_cast<std::size_t>((w + i) % opt.workers)].steal(&tile)) {
              ++local.tiles_stolen;
              break;
            }
            tile = -1;
          }
        }
      }
      if (tile < 0) {
        if (stop.load(std::memory_order_acquire) ||
            tiles_done.load(std::memory_order_acquire) >= total) {
          break;
        }
        ++local.starvation_waits;
        if (++idle_spins < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;
      }
      idle_spins = 0;
      if (stop.load(std::memory_order_acquire)) break;  // Abandon the tile.
      execute(tile, w);
      ++local.tiles_executed;
    }
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.tiles_executed += local.tiles_executed;
    stats.tiles_stolen += local.tiles_stolen;
    stats.starvation_waits += local.starvation_waits;
  }
};

}  // namespace

SchedStats run_tile_graph(const SchedOptions& options,
                          const std::function<void(Index s, Index b, int worker)>& body,
                          const std::function<bool(Index s)>& strip_done) {
  CUDALIGN_CHECK(options.strips > 0 && options.blocks > 0, "tile graph must be non-empty");
  CUDALIGN_CHECK(options.workers > 0, "tile graph needs at least one worker");
  CUDALIGN_CHECK(options.window > 0, "strip window must be positive");
  CUDALIGN_CHECK(body != nullptr, "tile graph needs a body");

  GraphRun run;
  run.opt = options;
  run.total = static_cast<std::int64_t>(options.strips) * options.blocks;
  run.body = &body;
  run.deps = std::vector<std::atomic<std::uint8_t>>(static_cast<std::size_t>(run.total));
  for (Index s = 0; s < options.strips; ++s) {
    for (Index b = 0; b < options.blocks; ++b) {
      const std::uint8_t inputs = s > 0 && b > 0 ? 2 : (s > 0 || b > 0 ? 1 : 0);
      // order: relaxed — pre-start initialization; thread creation publishes it.
      run.deps[static_cast<std::size_t>(s * options.blocks + b)].store(
          inputs, std::memory_order_relaxed);
    }
  }
  run.strip_left = std::vector<std::atomic<Index>>(static_cast<std::size_t>(options.strips));
  // order: relaxed — pre-start initialization; thread creation publishes it.
  for (auto& left : run.strip_left) left.store(options.blocks, std::memory_order_relaxed);
  run.strip_complete.assign(static_cast<std::size_t>(options.strips), 0);
  // In-flight strips are bounded by window + 1 and each contributes at most
  // one ready tile (within-strip execution is sequential), so this capacity
  // is never the limit in practice; overflow spills to the injector anyway.
  const std::size_t deque_capacity = ceil_pow2(static_cast<std::size_t>(options.window) + 2) * 2;
  for (int w = 0; w < options.workers; ++w) run.deques.emplace_back(deque_capacity);

  // Seed the root: worker 0's deque starts with tile (0, 0).
  (void)run.deques[0].push(0);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    workers.emplace_back([&run, w] { run.worker_loop(w); });
  }

  // Driver loop: retire strips in ascending order (the row watermark).
  std::exception_ptr driver_error;
  {
    std::unique_lock<std::mutex> lock(run.done_mutex);
    for (Index s = 0; s < options.strips; ++s) {
      run.done_cv.wait(lock, [&run, s] {
        return run.error != nullptr || run.strip_complete[static_cast<std::size_t>(s)] != 0;
      });
      if (run.error != nullptr) break;
      lock.unlock();
      bool keep_going = true;
      if (strip_done) {
        try {
          keep_going = strip_done(s);
        } catch (...) {
          driver_error = std::current_exception();
          keep_going = false;
        }
      }
      if (keep_going) {
        // Advance the watermark and admit parked strips that now fit.
        std::vector<std::int64_t> released;
        {
          std::lock_guard<std::mutex> gate(run.queue_mutex);
          run.watermark = s + 1;
          while (!run.parked.empty() && run.parked.front() <= run.watermark + options.window) {
            released.push_back(run.parked.front() * options.blocks);
            run.parked.pop_front();
          }
          for (std::int64_t tile : released) run.injector.push_back(tile);
        }
      } else {
        run.stop.store(true, std::memory_order_release);
      }
      lock.lock();
      if (!keep_going) break;
    }
  }
  run.stop.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();

  if (driver_error) std::rethrow_exception(driver_error);
  {
    std::lock_guard<std::mutex> lock(run.done_mutex);
    if (run.error) std::rethrow_exception(run.error);
  }
  return run.stats;
}

}  // namespace cudalign::engine::sched
