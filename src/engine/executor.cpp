#include "engine/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>

#include "check/bus_audit.hpp"
#include "check/checked.hpp"
#include "common/timer.hpp"
#include "dp/linear.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/sched.hpp"
#include "obs/telemetry.hpp"

namespace cudalign::engine {

namespace {

using dp::AlignMode;

/// Merge rule shared with the reference: higher score wins; ties break toward
/// the lexicographically smallest vertex (row-major first occurrence).
void merge_best(dp::LocalBest& best, const dp::LocalBest& cand) {
  if (cand.score > best.score ||
      (cand.score == best.score && cand.score > 0 &&
       (cand.i < best.i || (cand.i == best.i && cand.j < best.j)))) {
    best = cand;
  }
}

/// Assembles one pending special row from per-chunk segments.
struct PendingRow {
  std::vector<BusCell> cells;
  Index chunks_done = 0;
};

/// Dataflow executor (ProblemSpec::executor == kDataflow): drives the tile
/// grid through sched::run_tile_graph instead of the per-diagonal barrier.
/// Validation, kernel pinning and the m/n == 0 fast path mirror run_wavefront
/// exactly; `forced_kernel` is already resolved by the caller.
///
/// Per-strip resources (vertical-bus planes, result slots, the pending
/// special row, pruning-closure rows) rotate over wcap = window + 2 buffers
/// indexed strip % wcap. Safe because the scheduler's window gate keeps at
/// most window + 1 strips in flight: strip s + wcap cannot enter before the
/// driver retired strip s, so plane reuse never overlaps a live strip.
RunResult run_dataflow(const ProblemSpec& spec, const Hooks& hooks, ThreadPool* pool,
                       const KernelVariant* forced_kernel) {
  CUDALIGN_CHECK(hooks.tap_columns.empty() && !hooks.find_value,
                 "the dataflow executor does not support taps or value probes (their "
                 "delivery is keyed to diagonal order; use the lockstep executor)");
  const Index m = check::checked_cast<Index>(spec.a.size());
  const Index n = check::checked_cast<Index>(spec.b.size());

  Timer timer;
  RunResult result;
  const GridSpec grid = fit_to_width(spec.grid, n);
  const Index strip_rows = grid.strip_rows();
  const Index row0 = spec.start_row;
  if (row0 != 0 || !spec.initial_hbus.empty()) {
    CUDALIGN_CHECK(row0 >= 0 && row0 < m, "resume start row must lie inside the matrix");
    CUDALIGN_CHECK(row0 % strip_rows == 0,
                   "resume start row must be a strip boundary (a flushed special row)");
    CUDALIGN_CHECK(static_cast<Index>(spec.initial_hbus.size()) == n + 1,
                   "resume needs the complete restored horizontal bus (n+1 cells)");
  }
  const Index base_strip = row0 / strip_rows;
  const Index strips = (m - row0 + strip_rows - 1) / strip_rows;
  const Index blocks = std::max<Index>(1, std::min(grid.blocks, n));
  result.best = spec.initial_best;
  result.stats.blocks_used = blocks;
  result.stats.threads_used = grid.threads;
  const Recurrence& rec = spec.recurrence;

  if (m == 0 || n == 0) {
    result.stats.seconds = timer.seconds();
    return result;
  }

  std::vector<Index> cuts(static_cast<std::size_t>(blocks) + 1);
  for (Index b = 0; b <= blocks; ++b) {
    cuts[static_cast<std::size_t>(b)] = n * b / blocks;
  }

  const int workers = std::max<int>(1, static_cast<int>(pool->worker_count()));
  const Index window = std::max<Index>(4, 2 * static_cast<Index>(workers));
  const Index wcap = window + 2;

  check::BusAuditor* audit = hooks.bus_audit;
  if (audit != nullptr) {
    audit->begin_run(n, strips, blocks, strip_rows, cuts,
                     check::OrderModel::kTileHappensBefore, wcap);
  }

  std::vector<BusCell> hbus(static_cast<std::size_t>(n) + 1);
  if (!spec.initial_hbus.empty()) {
    std::copy(spec.initial_hbus.begin(), spec.initial_hbus.end(), hbus.begin());
  } else {
    for (Index j = 0; j <= n; ++j) hbus[static_cast<std::size_t>(j)] = rec.top_boundary(j);
  }
  if (audit != nullptr) audit->seed_horizontal();

  const std::size_t vbus_len = static_cast<std::size_t>(strip_rows) + 1;
  std::vector<std::vector<BusCell>> vbus(static_cast<std::size_t>(blocks + 1) *
                                         static_cast<std::size_t>(wcap));
  for (auto& buf : vbus) buf.resize(vbus_len);
  auto vbus_at = [&](Index boundary, Index strip) -> std::vector<BusCell>& {
    return vbus[static_cast<std::size_t>(boundary * wcap + strip % wcap)];
  };
  result.stats.bus_bytes = hbus.size() * sizeof(BusCell) + vbus.size() * vbus_len * sizeof(BusCell);

  auto strip_is_special = [&](Index s) {
    if (hooks.special_row_interval == 0) return false;
    const Index g = base_strip + s;
    const Index r1 = (g + 1) * strip_rows;
    return (g + 1) % hooks.special_row_interval == 0 && r1 < m;
  };

  /// Rotating per-strip state, consumed by the driver at strip retirement.
  struct StripSlot {
    std::vector<TileResult> results;
    std::vector<std::uint8_t> pruned;     ///< Allocated only under pruning.
    std::vector<BusCell> special_row;     ///< Filled only on special strips.
  };
  std::vector<StripSlot> slots(static_cast<std::size_t>(wcap));
  for (StripSlot& slot : slots) {
    slot.results.resize(static_cast<std::size_t>(blocks));
    if (spec.block_pruning) slot.pruned.assign(static_cast<std::size_t>(blocks), 0);
  }

  // Pruning closure (see ProblemSpec::block_pruning): closure[s % wcap][b]
  // holds the best score over tile (s, b)'s ancestor rectangle plus the
  // resume seed. Plain (non-atomic) Score: the scheduler's dependency edges
  // order every access — (s, b) reads rows written by (s-1, b) and (s, b-1),
  // and slot reuse at wcap distance sits below (s, b) in the same column
  // chain.
  std::vector<Score> closure;
  if (spec.block_pruning) {
    closure.assign(static_cast<std::size_t>(wcap) * static_cast<std::size_t>(blocks), 0);
  }

  const Index total_tiles = strips * blocks;

  auto body = [&](Index s, Index b, int /*worker*/) {
    const Index r0 = row0 + s * strip_rows;
    const Index r1 = std::min(m, r0 + strip_rows);
    const Index c0 = cuts[static_cast<std::size_t>(b)];
    const Index c1 = cuts[static_cast<std::size_t>(b + 1)];
    const Index d = s + b;  // Logical diagonal, for audit reports only.
    StripSlot& slot = slots[static_cast<std::size_t>(s % wcap)];

    if (b == 0) {
      // Column-0 seeding happens on the worker that opens the strip (the
      // lockstep driver does this per diagonal; here there is no driver
      // touchpoint before the strip retires).
      auto& buf = vbus_at(0, s);
      for (Index i = r0; i <= r1; ++i) {
        buf[static_cast<std::size_t>(i - r0)] = rec.left_boundary(i);
      }
      if (audit != nullptr) audit->seed_vertical(s, r1 - r0);
      if (strip_is_special(s)) {
        slot.special_row.assign(static_cast<std::size_t>(n) + 1, BusCell{});
        slot.special_row[0] = BusCell{rec.left_boundary(r1).h, rec.left_boundary_f(r1)};
      }
    }

    TileJob job;
    job.r0 = r0;
    job.r1 = r1;
    job.c0 = c0;
    job.c1 = c1;
    job.a = spec.a;
    job.b = spec.b;
    job.recurrence = &rec;
    job.hbus = std::span<BusCell>(hbus).subspan(static_cast<std::size_t>(c0),
                                                static_cast<std::size_t>(c1 - c0) + 1);
    const Index rows = r1 - r0;
    job.vbus_in = std::span<const BusCell>(vbus_at(b, s)).subspan(0,
                                                                  static_cast<std::size_t>(rows) + 1);
    job.vbus_out = std::span<BusCell>(vbus_at(b + 1, s)).subspan(0,
                                                                 static_cast<std::size_t>(rows) + 1);
    job.track_best = rec.mode == AlignMode::kLocal;

    if (audit != nullptr) {
      audit->read_horizontal(s, b, d, c0, c1);
      audit->read_vertical(s, b, d, rows);
    }

    bool tile_pruned = false;
    Score closure_in = 0;
    if (spec.block_pruning) {
      closure_in = spec.initial_best.score;
      if (s > 0) {
        closure_in = std::max(
            closure_in, closure[static_cast<std::size_t>(((s - 1) % wcap) * blocks + b)]);
      }
      if (b > 0) {
        closure_in =
            std::max(closure_in, closure[static_cast<std::size_t>((s % wcap) * blocks + b - 1)]);
      }
      if (closure_in > 0) {
        // Best incoming H across the tile's boundary (the corner arrives via
        // the vertical bus; hbus index 0 is the left neighbour's and stale).
        Score max_in = 0;  // Local mode: a fresh alignment can start anywhere.
        for (std::size_t k = 1; k < job.hbus.size(); ++k) {
          max_in = std::max(max_in, job.hbus[k].h);
        }
        for (const BusCell& cell : job.vbus_in) max_in = std::max(max_in, cell.h);
        const WideScore bound =
            max_in + static_cast<WideScore>(rec.scheme.match) * std::min(m - r0, n - c0);
        if (bound < closure_in) {
          // Publish safe lower bounds and skip the kernel.
          for (std::size_t k = 1; k < job.hbus.size(); ++k) job.hbus[k] = BusCell{0, kNegInf};
          for (auto& cell : job.vbus_out) cell = BusCell{0, kNegInf};
          slot.results[static_cast<std::size_t>(b)] = TileResult{};
          slot.pruned[static_cast<std::size_t>(b)] = 1;
          tile_pruned = true;
          if (audit != nullptr) {
            audit->write_horizontal(s, b, d, c0, c1);
            audit->write_vertical(s, b, d, rows);
          }
        }
      }
    }

    if (!tile_pruned) {
      static thread_local TileScratch scratch;
      slot.results[static_cast<std::size_t>(b)] = run_tile(job, scratch, forced_kernel);
      if (spec.block_pruning) slot.pruned[static_cast<std::size_t>(b)] = 0;
      if (audit != nullptr) {
        audit->write_horizontal(s, b, d, c0, c1);
        audit->write_vertical(s, b, d, rows);
      }
    }
    if (spec.block_pruning) {
      closure[static_cast<std::size_t>((s % wcap) * blocks + b)] =
          std::max(closure_in, slot.results[static_cast<std::size_t>(b)].best.score);
    }

    // Special-row capture must happen here, inside the tile: the down
    // successor (s + 1, b) is released the moment this body returns and would
    // overwrite the hbus segment before the driver ever sees it.
    if (strip_is_special(s)) {
      for (Index j = c0 + 1; j <= c1; ++j) {
        slot.special_row[static_cast<std::size_t>(j)] = hbus[static_cast<std::size_t>(j)];
      }
    }
  };

  auto strip_done = [&](Index s) -> bool {
    StripSlot& slot = slots[static_cast<std::size_t>(s % wcap)];
    const Index r0 = row0 + s * strip_rows;
    const Index r1 = std::min(m, r0 + strip_rows);
    const bool special = strip_is_special(s);
    for (Index b = 0; b < blocks; ++b) {
      TileResult& tr = slot.results[static_cast<std::size_t>(b)];
      result.stats.cells += tr.cells;
      ++result.stats.tiles;
      const Index c0 = cuts[static_cast<std::size_t>(b)];
      const Index c1 = cuts[static_cast<std::size_t>(b + 1)];
      if (spec.block_pruning && slot.pruned[static_cast<std::size_t>(b)]) {
        ++result.stats.pruned_tiles;
        result.stats.pruned_cells += static_cast<WideScore>(r1 - r0) * (c1 - c0);
      } else {
        KernelTally& tally = result.stats.kernels[static_cast<std::size_t>(tr.kernel)];
        ++tally.tiles;
        tally.cells += tr.cells;
      }
      // Bus traffic accounting, identical to lockstep (RunStats doc).
      const auto h_seg_bytes =
          static_cast<std::int64_t>((c1 - c0 + 1) * static_cast<Index>(sizeof(BusCell)));
      const auto v_seg_bytes =
          static_cast<std::int64_t>((r1 - r0 + 1) * static_cast<Index>(sizeof(BusCell)));
      ++result.stats.hbus_reads;
      ++result.stats.hbus_writes;
      ++result.stats.vbus_reads;
      ++result.stats.vbus_writes;
      result.stats.hbus_bytes += 2 * h_seg_bytes;
      result.stats.vbus_bytes += 2 * v_seg_bytes;
      if (special) {
        ++result.stats.hbus_reads;
        result.stats.hbus_bytes +=
            static_cast<std::int64_t>((c1 - c0) * static_cast<Index>(sizeof(BusCell)));
      }
      if (tr.best.score > 0) merge_best(result.best, tr.best);
    }
    ++result.stats.strips;
    if (special) {
      // Diagonal coordinate for strip retirement: the strip's last external
      // diagonal (s + blocks - 1), matching the tile that completed it.
      if (audit != nullptr) audit->flush_handoff(s, s + blocks - 1);
      Timer flush_timer;
      hooks.on_special_row(r1, slot.special_row);
      // Checkpoint hand-off: the merged best here covers every tile of
      // strips <= s — a superset of rows <= r1, which is all a resume needs
      // (re-merging recomputed candidates is idempotent). The value can
      // differ from lockstep's at the same row; final results cannot.
      if (hooks.after_special_row) hooks.after_special_row(r1, result.best);
      result.stats.special_row_wait_seconds += flush_timer.seconds();
    }
    if (hooks.on_progress) hooks.on_progress((s + 1) * blocks, total_tiles);
    return true;
  };

  sched::SchedOptions sched_options;
  sched_options.strips = strips;
  sched_options.blocks = blocks;
  sched_options.workers = workers;
  sched_options.window = window;
  const sched::SchedStats sched_stats = sched::run_tile_graph(sched_options, body, strip_done);
  result.stats.tiles_stolen = static_cast<Index>(sched_stats.tiles_stolen);
  result.stats.starvation_waits = static_cast<Index>(sched_stats.starvation_waits);

  result.stats.seconds = timer.seconds();
  return result;
}

}  // namespace

const char* executor_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kLockstep: return "lockstep";
    case ExecutorKind::kDataflow: return "dataflow";
  }
  return "unknown";
}

ExecutorKind executor_from_name(std::string_view name) {
  if (name == "lockstep") return ExecutorKind::kLockstep;
  if (name == "dataflow") return ExecutorKind::kDataflow;
  CUDALIGN_CHECK(false, "unknown executor \"" + std::string(name) +
                            "\" (expected \"lockstep\" or \"dataflow\")");
  return ExecutorKind::kLockstep;
}

RunResult run_wavefront(const ProblemSpec& spec, const Hooks& hooks, ThreadPool* pool) {
  spec.recurrence.scheme.validate();
  CUDALIGN_CHECK(hooks.special_row_interval == 0 || hooks.on_special_row,
                 "special-row flushing requires an on_special_row sink");
  CUDALIGN_CHECK(hooks.tap_columns.empty() || hooks.on_tap,
                 "tap columns require an on_tap hook");
  CUDALIGN_CHECK(std::is_sorted(hooks.tap_columns.begin(), hooks.tap_columns.end()),
                 "tap columns must be ascending");
  if (spec.block_pruning) {
    CUDALIGN_CHECK(spec.recurrence.mode == AlignMode::kLocal,
                   "block pruning requires local mode (a global run has no best bound)");
    CUDALIGN_CHECK(hooks.tap_columns.empty() && !hooks.find_value,
                   "block pruning cannot be combined with taps or value probes");
  }
  if (pool == nullptr) pool = &ThreadPool::shared();

  // Resolve kernel pinning up front so a bad name fails on the caller thread
  // with a proper message. The spec override is API input and throws; the
  // environment override is resolved by kernel_override() itself, which
  // fail-fast exits on an unknown CUDALIGN_KERNEL name — touching it here
  // guarantees that happens before any tile work starts.
  const KernelVariant* forced_kernel = nullptr;
  if (!spec.kernel_override.empty()) {
    forced_kernel = find_kernel(spec.kernel_override);
    CUDALIGN_CHECK(forced_kernel != nullptr,
                   "unknown kernel variant in ProblemSpec::kernel_override: " +
                       spec.kernel_override + " (valid: " + kernel_names_list() + ")");
  }
  (void)kernel_override();

  if (spec.executor == ExecutorKind::kDataflow) {
    return run_dataflow(spec, hooks, pool, forced_kernel);
  }

  const Index m = check::checked_cast<Index>(spec.a.size());
  const Index n = check::checked_cast<Index>(spec.b.size());
  for (std::size_t t = 0; t < hooks.tap_columns.size(); ++t) {
    const Index c = hooks.tap_columns[t];
    CUDALIGN_CHECK(c >= 1 && c <= n, "tap columns must be in [1, n]");
    CUDALIGN_CHECK(t == 0 || hooks.tap_columns[t - 1] < c, "tap columns must be unique");
  }

  Timer timer;
  RunResult result;
  const GridSpec grid = fit_to_width(spec.grid, n);
  const Index strip_rows = grid.strip_rows();
  const Index row0 = spec.start_row;
  if (row0 != 0 || !spec.initial_hbus.empty()) {
    CUDALIGN_CHECK(row0 >= 0 && row0 < m, "resume start row must lie inside the matrix");
    CUDALIGN_CHECK(row0 % strip_rows == 0,
                   "resume start row must be a strip boundary (a flushed special row)");
    CUDALIGN_CHECK(static_cast<Index>(spec.initial_hbus.size()) == n + 1,
                   "resume needs the complete restored horizontal bus (n+1 cells)");
    CUDALIGN_CHECK(hooks.tap_columns.empty() && !hooks.find_value,
                   "resume cannot be combined with taps or value probes (their row-0 "
                   "boundary delivery would not reflect the restored bus)");
  }
  const Index base_strip = row0 / strip_rows;
  const Index strips = (m - row0 + strip_rows - 1) / strip_rows;
  const Index blocks = std::max<Index>(1, std::min(grid.blocks, n));
  result.best = spec.initial_best;
  result.stats.blocks_used = blocks;
  result.stats.threads_used = grid.threads;

  const Recurrence& rec = spec.recurrence;

  // Row-0 tap delivery (boundary vertices, before any strip).
  for (std::size_t t = 0; t < hooks.tap_columns.size(); ++t) {
    const Index col = hooks.tap_columns[t];
    const BusCell entry{rec.top_boundary(col).h, rec.top_boundary_e(col)};
    if (hooks.on_tap(col, 0, std::span<const BusCell>(&entry, 1)) == HookAction::kStop) {
      result.stopped_early = true;
      result.stats.seconds = timer.seconds();
      return result;
    }
  }
  if (m == 0 || n == 0) {
    result.stats.seconds = timer.seconds();
    return result;
  }

  // Chunk boundaries: blocks near-equal column spans.
  std::vector<Index> cuts(static_cast<std::size_t>(blocks) + 1);
  for (Index b = 0; b <= blocks; ++b) {
    cuts[static_cast<std::size_t>(b)] = n * b / blocks;
  }

  check::BusAuditor* audit = hooks.bus_audit;
  if (audit != nullptr) {
    audit->begin_run(n, strips, blocks, strip_rows, cuts);
  }

  // Horizontal bus: (H, F) per column vertex, initialized to row `row0` — the
  // top boundary for a fresh run, the restored special row for a resume.
  std::vector<BusCell> hbus(static_cast<std::size_t>(n) + 1);
  if (!spec.initial_hbus.empty()) {
    std::copy(spec.initial_hbus.begin(), spec.initial_hbus.end(), hbus.begin());
  } else {
    for (Index j = 0; j <= n; ++j) hbus[static_cast<std::size_t>(j)] = rec.top_boundary(j);
  }
  if (audit != nullptr) audit->seed_horizontal();

  // Vertical buses: (H, E) per row vertex of the current strip, one buffer
  // per chunk boundary, double-buffered by strip parity (same-diagonal
  // hazard; see executor.hpp).
  const std::size_t vbus_len = static_cast<std::size_t>(strip_rows) + 1;
  std::vector<std::vector<BusCell>> vbus(static_cast<std::size_t>(blocks + 1) * 2);
  for (auto& buf : vbus) buf.resize(vbus_len);
  auto vbus_at = [&](Index boundary, Index strip) -> std::vector<BusCell>& {
    return vbus[static_cast<std::size_t>(boundary * 2 + (strip & 1))];
  };

  result.stats.bus_bytes = hbus.size() * sizeof(BusCell) + vbus.size() * vbus_len * sizeof(BusCell);

  // Special-row assembly state. Strip indices here are *global* (offset by
  // base_strip), so a resumed run flushes exactly the rows a fresh run would.
  std::map<Index, PendingRow> pending_rows;
  auto strip_is_special = [&](Index s) {
    if (hooks.special_row_interval == 0) return false;
    const Index g = base_strip + s;
    const Index r1 = (g + 1) * strip_rows;
    return (g + 1) % hooks.special_row_interval == 0 && r1 < m;
  };

  std::vector<TileResult> tile_results(static_cast<std::size_t>(blocks));
  std::vector<std::vector<Index>> tile_taps(static_cast<std::size_t>(blocks));
  // Per-strip best accumulators, folded into result.best only when the strip
  // completes: the best handed to after_special_row is then exactly the best
  // over rows <= r1 — the same value the dataflow executor's strip watermark
  // produces, keeping checkpoints executor-independent. (Merging per tile in
  // diagonal order would fold tiles from strips below the flushed row.)
  std::vector<dp::LocalBest> strip_best(static_cast<std::size_t>(strips));
  // Pruning-only state, not allocated otherwise. tile_pruned is
  // std::uint8_t, not bool: tiles on one diagonal write distinct slots
  // concurrently, and vector<bool>'s bit packing would turn those into
  // read-modify-write races on shared words. `closure` is the ancestor
  // closure of best scores (see ProblemSpec::block_pruning), double-buffered
  // by strip parity like the vertical bus: tile (s, b) reads rows written at
  // least one diagonal earlier and same-diagonal tiles write distinct slots.
  std::vector<std::uint8_t> tile_pruned(
      spec.block_pruning ? static_cast<std::size_t>(blocks) : 0);
  std::vector<Score> closure(spec.block_pruning ? 2 * static_cast<std::size_t>(blocks) : 0);

  // Diagonal-bucket spans: the wavefront phase profile for the run report.
  obs::Telemetry* telemetry = hooks.telemetry;
  const Index total_tiles = strips * blocks;
  Index tiles_completed = 0;  // For on_progress (per-tile, see Hooks).
  const Index total_diagonals = strips + blocks - 1;
  const Index bucket_size =
      telemetry != nullptr
          ? (total_diagonals + kDiagonalBuckets - 1) / kDiagonalBuckets
          : 0;

  for (Index d = 0; d < total_diagonals && !result.stopped_early; ++d) {
    if (bucket_size > 0 && d % bucket_size == 0) {
      const Index last = std::min(d + bucket_size, total_diagonals) - 1;
      telemetry->begin("diagonals " + std::to_string(d) + "-" + std::to_string(last));
    }
    const Index s_lo = std::max<Index>(0, d - blocks + 1);
    const Index s_hi = std::min<Index>(strips - 1, d);

    // Fill the column-0 vertical bus for the strip entering the wavefront.
    if (d < strips) {
      const Index s = d;
      const Index r0 = row0 + s * strip_rows;
      const Index r1 = std::min(m, r0 + strip_rows);
      auto& buf = vbus_at(0, s);
      for (Index i = r0; i <= r1; ++i) {
        buf[static_cast<std::size_t>(i - r0)] = rec.left_boundary(i);
      }
      if (audit != nullptr) audit->seed_vertical(s, r1 - r0);
    }

    // Launch the diagonal.
    struct Slot {
      Index s, b;
    };
    std::vector<Slot> slots;
    for (Index s = s_hi; s >= s_lo; --s) slots.push_back(Slot{s, d - s});

    pool->parallel_for(slots.size(), [&](std::size_t idx) {
      const auto [s, b] = slots[idx];
      const Index r0 = row0 + s * strip_rows;
      const Index r1 = std::min(m, r0 + strip_rows);
      const Index c0 = cuts[static_cast<std::size_t>(b)];
      const Index c1 = cuts[static_cast<std::size_t>(b + 1)];

      // Taps covered by this chunk.
      auto& taps = tile_taps[static_cast<std::size_t>(b)];
      taps.clear();
      for (Index col : hooks.tap_columns) {
        if (col > c0 && col <= c1) taps.push_back(col);
      }

      TileJob job;
      job.r0 = r0;
      job.r1 = r1;
      job.c0 = c0;
      job.c1 = c1;
      job.a = spec.a;
      job.b = spec.b;
      job.recurrence = &rec;
      job.hbus = std::span<BusCell>(hbus).subspan(static_cast<std::size_t>(c0),
                                                  static_cast<std::size_t>(c1 - c0) + 1);
      const Index rows = r1 - r0;
      job.vbus_in = std::span<const BusCell>(vbus_at(b, s)).subspan(0,
                                                                    static_cast<std::size_t>(rows) + 1);
      job.vbus_out = std::span<BusCell>(vbus_at(b + 1, s)).subspan(0,
                                                                   static_cast<std::size_t>(rows) + 1);
      job.tap_cols = taps;
      job.track_best = rec.mode == AlignMode::kLocal;
      job.find_value = hooks.find_value;

      // Audit: the tile consumes its row-r0 horizontal segment and its
      // incoming vertical boundary before publishing anything (both the
      // kernel and the pruning bound-scan below read them).
      if (audit != nullptr) {
        audit->read_horizontal(s, b, d, c0, c1);
        audit->read_vertical(s, b, d, r1 - r0);
      }

      Score closure_in = 0;
      if (spec.block_pruning) {
        tile_pruned[static_cast<std::size_t>(b)] = false;
        closure_in = spec.initial_best.score;
        if (s > 0) {
          closure_in =
              std::max(closure_in, closure[static_cast<std::size_t>(((s - 1) & 1) * blocks + b)]);
        }
        if (b > 0) {
          closure_in =
              std::max(closure_in, closure[static_cast<std::size_t>((s & 1) * blocks + b - 1)]);
        }
      }
      if (spec.block_pruning && closure_in > 0) {
        // Best incoming H across the tile's boundary (the corner arrives via
        // the vertical bus; hbus index 0 is the left neighbour's and stale).
        Score max_in = 0;  // Local mode: a fresh alignment can start anywhere.
        for (std::size_t k = 1; k < job.hbus.size(); ++k) {
          max_in = std::max(max_in, job.hbus[k].h);
        }
        for (const BusCell& cell : job.vbus_in) max_in = std::max(max_in, cell.h);
        const WideScore bound =
            max_in + static_cast<WideScore>(rec.scheme.match) * std::min(m - r0, n - c0);
        if (bound < closure_in) {
          // Publish safe lower bounds and skip the kernel.
          for (std::size_t k = 1; k < job.hbus.size(); ++k) job.hbus[k] = BusCell{0, kNegInf};
          for (auto& cell : job.vbus_out) cell = BusCell{0, kNegInf};
          tile_results[static_cast<std::size_t>(b)] = TileResult{};
          tile_pruned[static_cast<std::size_t>(b)] = true;
          closure[static_cast<std::size_t>((s & 1) * blocks + b)] = closure_in;
          if (audit != nullptr) {
            audit->write_horizontal(s, b, d, c0, c1);
            audit->write_vertical(s, b, d, r1 - r0);
          }
          return;
        }
      }

      // Scratch is reused across tiles of the same worker thread.
      static thread_local TileScratch scratch;
      tile_results[static_cast<std::size_t>(b)] = run_tile(job, scratch, forced_kernel);
      if (spec.block_pruning) {
        closure[static_cast<std::size_t>((s & 1) * blocks + b)] =
            std::max(closure_in, tile_results[static_cast<std::size_t>(b)].best.score);
      }
      if (audit != nullptr) {
        audit->write_horizontal(s, b, d, c0, c1);
        audit->write_vertical(s, b, d, r1 - r0);
      }
    });

    // Deterministic post-processing in ascending strip order.
    for (Index s = s_lo; s <= s_hi && !result.stopped_early; ++s) {
      const Index b = d - s;
      TileResult& tr = tile_results[static_cast<std::size_t>(b)];
      result.stats.cells += tr.cells;
      ++result.stats.tiles;
      if (spec.block_pruning && tile_pruned[static_cast<std::size_t>(b)]) {
        ++result.stats.pruned_tiles;
        const Index pr0 = row0 + s * strip_rows;
        result.stats.pruned_cells +=
            static_cast<WideScore>(std::min(m, pr0 + strip_rows) - pr0) *
            (cuts[static_cast<std::size_t>(b + 1)] - cuts[static_cast<std::size_t>(b)]);
      } else {
        KernelTally& tally = result.stats.kernels[static_cast<std::size_t>(tr.kernel)];
        ++tally.tiles;
        tally.cells += tr.cells;
      }
      const Index r0 = row0 + s * strip_rows;
      const Index r1 = std::min(m, r0 + strip_rows);
      const Index c0 = cuts[static_cast<std::size_t>(b)];
      const Index c1 = cuts[static_cast<std::size_t>(b + 1)];

      // Bus traffic accounting (see RunStats): one read + one write per bus
      // per tile, pruned or not (pruning scans the boundary and publishes
      // lower bounds).
      const auto h_seg_bytes =
          static_cast<std::int64_t>((c1 - c0 + 1) * static_cast<Index>(sizeof(BusCell)));
      const auto v_seg_bytes =
          static_cast<std::int64_t>((r1 - r0 + 1) * static_cast<Index>(sizeof(BusCell)));
      ++result.stats.hbus_reads;
      ++result.stats.hbus_writes;
      ++result.stats.vbus_reads;
      ++result.stats.vbus_writes;
      result.stats.hbus_bytes += 2 * h_seg_bytes;
      result.stats.vbus_bytes += 2 * v_seg_bytes;

      if (tr.best.score > 0) merge_best(strip_best[static_cast<std::size_t>(s)], tr.best);
      if (tr.found && !result.found) {
        result.found = true;
        result.found_i = tr.found_i;
        result.found_j = tr.found_j;
        result.stopped_early = true;
      }

      // Tap deliveries for this tile's rows.
      const auto& taps = tile_taps[static_cast<std::size_t>(b)];
      for (std::size_t t = 0; t < taps.size() && !result.stopped_early; ++t) {
        if (hooks.on_tap(taps[t], r0 + 1, tr.taps[t]) == HookAction::kStop) {
          result.stopped_early = true;
        }
      }

      if (b == blocks - 1) {
        ++result.stats.strips;
        if (strip_best[static_cast<std::size_t>(s)].score > 0) {
          merge_best(result.best, strip_best[static_cast<std::size_t>(s)]);
        }
      }

      // Special-row segment assembly.
      if (strip_is_special(s) && !result.stopped_early) {
        auto [it, inserted] = pending_rows.try_emplace(s);
        PendingRow& row = it->second;
        if (inserted) {
          row.cells.resize(static_cast<std::size_t>(n) + 1);
          row.cells[0] = BusCell{rec.left_boundary(r1).h, rec.left_boundary_f(r1)};
        }
        // The tile just published row r1 into hbus (c0..c1].
        for (Index j = c0 + 1; j <= c1; ++j) {
          row.cells[static_cast<std::size_t>(j)] = hbus[static_cast<std::size_t>(j)];
        }
        ++result.stats.hbus_reads;
        result.stats.hbus_bytes +=
            static_cast<std::int64_t>((c1 - c0) * static_cast<Index>(sizeof(BusCell)));
        if (++row.chunks_done == blocks) {
          if (audit != nullptr) audit->flush_handoff(s, d);
          Timer flush_timer;
          hooks.on_special_row(r1, row.cells);
          pending_rows.erase(it);
          // Checkpoint hand-off: best-so-far here covers (at least) every
          // cell of rows <= r1 — all earlier strips have fully completed and
          // this strip just merged its last chunk.
          if (hooks.after_special_row) hooks.after_special_row(r1, result.best);
          result.stats.special_row_wait_seconds += flush_timer.seconds();
        }
      }
    }
    ++result.stats.diagonals;
    if (bucket_size > 0 &&
        ((d + 1) % bucket_size == 0 || d + 1 == total_diagonals || result.stopped_early)) {
      telemetry->end();
    }
    tiles_completed += s_hi - s_lo + 1;
    if (hooks.on_progress) hooks.on_progress(tiles_completed, total_tiles);
  }

  // An early stop leaves partial strips unfolded; their tiles did run, so
  // fold them for the returned best (idempotent for completed strips — the
  // merge is a max under a total order).
  for (const dp::LocalBest& sb : strip_best) {
    if (sb.score > 0) merge_best(result.best, sb);
  }

  result.stats.seconds = timer.seconds();
  return result;
}

std::string kernel_usage_summary(const std::array<KernelTally, kKernelIdCount>& kernels) {
  std::string out;
  for (std::size_t id = 0; id < kKernelIdCount; ++id) {
    const KernelTally& tally = kernels[id];
    if (tally.tiles == 0) continue;
    if (!out.empty()) out += ", ";
    out += kernel_info(static_cast<KernelId>(id)).name;
    out += "=";
    out += std::to_string(tally.tiles);
    out += "/";
    out += std::to_string(tally.cells);
  }
  return out;
}

std::string kernel_usage_summary(const RunStats& stats) {
  return kernel_usage_summary(stats.kernels);
}

RunResult run_reference(const ProblemSpec& spec, const Hooks& hooks) {
  spec.recurrence.scheme.validate();
  if (hooks.find_value) {
    CUDALIGN_CHECK(false, "run_reference does not implement the value probe");
  }
  CUDALIGN_CHECK(spec.start_row == 0 && spec.initial_hbus.empty(),
                 "run_reference does not implement resume (start_row / initial_hbus)");
  RunResult result;
  const Index m = static_cast<Index>(spec.a.size());
  const Index n = static_cast<Index>(spec.b.size());
  const GridSpec grid = fit_to_width(spec.grid, n);
  const Index strip_rows = grid.strip_rows();

  // Row-0 tap delivery, mirroring run_wavefront.
  for (Index col : hooks.tap_columns) {
    const BusCell entry{spec.recurrence.top_boundary(col).h, spec.recurrence.top_boundary_e(col)};
    if (hooks.on_tap(col, 0, std::span<const BusCell>(&entry, 1)) == HookAction::kStop) {
      result.stopped_early = true;
      return result;
    }
  }
  if (m == 0 || n == 0) return result;

  // Accumulate tap entries per strip, then deliver at strip boundaries.
  std::vector<std::vector<BusCell>> tap_accum(hooks.tap_columns.size());
  Index strip_r0 = 0;
  bool stop = false;

  auto deliver_strip = [&](Index r1) {
    for (std::size_t t = 0; t < hooks.tap_columns.size() && !stop; ++t) {
      if (hooks.on_tap(hooks.tap_columns[t], strip_r0 + 1, tap_accum[t]) == HookAction::kStop) {
        stop = true;
      }
      tap_accum[t].clear();
    }
    strip_r0 = r1;
  };

  const auto row_visitor = [&](const dp::RowView& row) {
    if (stop) return;
    result.stats.cells += row.i == 0 ? 0 : n;
    if (row.i >= 1) {
      for (std::size_t j = 0; j < row.h.size(); ++j) {
        if (spec.recurrence.mode == AlignMode::kLocal && row.h[j] > result.best.score) {
          result.best = dp::LocalBest{row.h[j], row.i, static_cast<Index>(j)};
        }
      }
      for (std::size_t t = 0; t < hooks.tap_columns.size(); ++t) {
        const auto col = static_cast<std::size_t>(hooks.tap_columns[t]);
        tap_accum[t].push_back(BusCell{row.h[col], row.e[col]});
      }
    }
    const bool strip_end = row.i > 0 && (row.i % strip_rows == 0 || row.i == m);
    if (strip_end) {
      const Index s = (row.i - 1) / strip_rows;
      deliver_strip(row.i);
      if (!stop && hooks.special_row_interval != 0 && (s + 1) % hooks.special_row_interval == 0 &&
          (s + 1) * strip_rows < m && row.i == (s + 1) * strip_rows) {
        std::vector<BusCell> cells(static_cast<std::size_t>(n) + 1);
        for (Index j = 0; j <= n; ++j) {
          cells[static_cast<std::size_t>(j)] = BusCell{row.h[static_cast<std::size_t>(j)],
                                                       row.f[static_cast<std::size_t>(j)]};
        }
        hooks.on_special_row(row.i, cells);
      }
    }
  };
  if (spec.recurrence.mode == AlignMode::kLocal) {
    (void)dp::sweep_rows(spec.a, spec.b, spec.recurrence.scheme, AlignMode::kLocal,
                         dp::CellState::kH, row_visitor);
  } else {
    (void)dp::sweep_rows_from(spec.a, spec.b, spec.recurrence.scheme, spec.recurrence.corner,
                              row_visitor);
  }
  result.stopped_early = stop;
  return result;
}

}  // namespace cudalign::engine
