// AVX-512BW striped backends — the only translation unit compiled with
// -mavx512bw.
//
// Same isolation contract as kernels_striped_avx2.cpp: the rest of the engine
// builds for the baseline ISA while this file provides 512-bit backends
// (64 x int8 / 32 x int16 lanes) behind a runtime CPU check. The dispatch in
// kernels_striped.cpp only calls these entry points after
// __builtin_cpu_supports("avx512bw") and avx512_kernels_compiled() both pass,
// so no AVX-512 instruction is ever reached on an older CPU. When the
// toolchain cannot target AVX-512BW the stubs keep the link whole and report
// "not compiled".
//
// BW is required (not just F): the byte/word saturating adds, subs and signed
// max used below are AVX-512BW instructions.
#include <cstdint>

#include "engine/kernel_detail.hpp"

#if defined(__AVX512BW__)

#include <immintrin.h>

#include "engine/striped_core.hpp"

namespace cudalign::engine::detail {

namespace {

template <typename LaneT>
struct Avx512Backend;

template <>
struct Avx512Backend<std::int16_t> {
  using Lane = std::int16_t;
  static constexpr Index kLanes = 32;
  static constexpr Lane kNinfLane = -16384;
  using V = __m512i;

  static V load(const Lane* p) { return _mm512_loadu_si512(p); }
  static void store(Lane* p, V x) { _mm512_storeu_si512(p, x); }
  static V set1(Lane x) { return _mm512_set1_epi16(x); }
  static V zero() { return _mm512_setzero_si512(); }
  static V max(V a, V b) { return _mm512_max_epi16(a, b); }
  static V adds(V a, V b) { return _mm512_adds_epi16(a, b); }
  static V subs(V a, V b) { return _mm512_subs_epi16(a, b); }
  static V and_(V a, V b) { return _mm512_and_si512(a, b); }
};

template <>
struct Avx512Backend<std::int8_t> {
  using Lane = std::int8_t;
  static constexpr Index kLanes = 64;
  static constexpr Lane kNinfLane = -128;
  using V = __m512i;

  static V load(const Lane* p) { return _mm512_loadu_si512(p); }
  static void store(Lane* p, V x) { _mm512_storeu_si512(p, x); }
  static V set1(Lane x) { return _mm512_set1_epi8(static_cast<char>(x)); }
  static V zero() { return _mm512_setzero_si512(); }
  static V max(V a, V b) { return _mm512_max_epi8(a, b); }
  static V adds(V a, V b) { return _mm512_adds_epi8(a, b); }
  static V subs(V a, V b) { return _mm512_subs_epi8(a, b); }
  static V and_(V a, V b) { return _mm512_and_si512(a, b); }
};

}  // namespace

bool avx512_kernels_compiled() noexcept { return true; }

template <typename LaneT, bool kBest>
TileResult run_striped_avx512(const TileJob& job, TileScratch& scratch) {
  return run_striped_core<Avx512Backend<LaneT>, kBest>(job, scratch);
}

template TileResult run_striped_avx512<std::int8_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int8_t, true>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int16_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int16_t, true>(const TileJob&, TileScratch&);

}  // namespace cudalign::engine::detail

#else  // !defined(__AVX512BW__)

namespace cudalign::engine::detail {

bool avx512_kernels_compiled() noexcept { return false; }

template <typename LaneT, bool kBest>
TileResult run_striped_avx512(const TileJob& job, TileScratch& scratch) {
  (void)job;
  (void)scratch;
  CUDALIGN_CHECK(false, "AVX-512 striped kernel called but not compiled in");
  return TileResult{};
}

template TileResult run_striped_avx512<std::int8_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int8_t, true>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int16_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped_avx512<std::int16_t, true>(const TileJob&, TileScratch&);

}  // namespace cudalign::engine::detail

#endif  // __AVX512BW__
