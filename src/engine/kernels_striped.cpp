// Striped kernel backends (generic + SSE2) and the runtime ISA dispatch.
//
// The algorithm lives in striped_core.hpp, templated over a tiny lane-ops
// backend; this file provides the portable scalar emulation (kGeneric — the
// forced baseline for equivalence tests), the SSE2 128-bit backends, and the
// process-wide ISA selection (CUDALIGN_SIMD / set_simd_isa_override). The
// AVX2 backends live in kernels_striped_avx2.cpp (the one TU compiled with
// -mavx2) and the AVX-512BW backends in kernels_striped_avx512.cpp (the one
// TU compiled with -mavx512bw); each is only entered when the CPU reports the
// matching feature.
//
// SSE2 has no signed 8-bit max (_mm_max_epi8 is SSE4.1), so the int8 backend
// uses the classic bias trick: flip the sign bit, take the *unsigned* max,
// flip back — xor with 0x80 is an order-isomorphism from signed to unsigned.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "check/annotations.hpp"
#include "common/error.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/striped_core.hpp"

namespace cudalign::engine {

namespace {

/// Portable emulation of the saturating lane ops; bit-identical to the SIMD
/// backends by construction (same widths, same saturation points). 128-bit
/// shaped so generic-vs-SSE2 runs stripe the tile identically.
template <typename LaneT, int N, LaneT kNinf>
struct GenericBackend {
  using Lane = LaneT;
  static constexpr Index kLanes = N;
  static constexpr Lane kNinfLane = kNinf;
  static constexpr int kMin = std::numeric_limits<Lane>::min();
  static constexpr int kMax = std::numeric_limits<Lane>::max();

  struct V {
    Lane v[N];
  };

  static V load(const Lane* p) {
    V r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  static void store(Lane* p, V x) { std::memcpy(p, x.v, sizeof(x.v)); }
  static V set1(Lane x) {
    V r;
    for (Lane& e : r.v) e = x;
    return r;
  }
  static V zero() { return set1(0); }
  static V max(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static V adds(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) {
      r.v[i] = static_cast<Lane>(std::clamp(a.v[i] + b.v[i], kMin, kMax));
    }
    return r;
  }
  static V subs(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) {
      r.v[i] = static_cast<Lane>(std::clamp(a.v[i] - b.v[i], kMin, kMax));
    }
    return r;
  }
  static V and_(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) r.v[i] = static_cast<Lane>(a.v[i] & b.v[i]);
    return r;
  }
};

using Generic8 = GenericBackend<std::int8_t, 16, std::int8_t{-128}>;
using Generic16 = GenericBackend<std::int16_t, 8, std::int16_t{-16384}>;

#if defined(__SSE2__)

template <typename LaneT>
struct Sse2Backend;

template <>
struct Sse2Backend<std::int16_t> {
  using Lane = std::int16_t;
  static constexpr Index kLanes = 8;
  static constexpr Lane kNinfLane = -16384;
  using V = __m128i;

  static V load(const Lane* p) { return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)); }
  static void store(Lane* p, V x) { _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x); }
  static V set1(Lane x) { return _mm_set1_epi16(x); }
  static V zero() { return _mm_setzero_si128(); }
  static V max(V a, V b) { return _mm_max_epi16(a, b); }
  static V adds(V a, V b) { return _mm_adds_epi16(a, b); }
  static V subs(V a, V b) { return _mm_subs_epi16(a, b); }
  static V and_(V a, V b) { return _mm_and_si128(a, b); }
};

template <>
struct Sse2Backend<std::int8_t> {
  using Lane = std::int8_t;
  static constexpr Index kLanes = 16;
  static constexpr Lane kNinfLane = -128;
  using V = __m128i;

  static V load(const Lane* p) { return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)); }
  static void store(Lane* p, V x) { _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x); }
  static V set1(Lane x) { return _mm_set1_epi8(static_cast<char>(x)); }
  static V zero() { return _mm_setzero_si128(); }
  static V max(V a, V b) {
    // SSE2 lacks _mm_max_epi8; xor 0x80 maps signed order onto unsigned.
    const V bias = _mm_set1_epi8(static_cast<char>(-128));
    return _mm_xor_si128(_mm_max_epu8(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias)), bias);
  }
  static V adds(V a, V b) { return _mm_adds_epi8(a, b); }
  static V subs(V a, V b) { return _mm_subs_epi8(a, b); }
  static V and_(V a, V b) { return _mm_and_si128(a, b); }
};

#endif  // __SSE2__

[[nodiscard]] bool isa_supported(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kGeneric:
      return true;
    case SimdIsa::kSse2:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case SimdIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return detail::avx2_kernels_compiled() && __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return detail::avx512_kernels_compiled() && __builtin_cpu_supports("avx512bw");
#else
      return false;
#endif
  }
  return false;
}

/// The best ISA this build + CPU can run (the "auto" choice).
[[nodiscard]] SimdIsa best_isa() noexcept {
  if (isa_supported(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
  if (isa_supported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (isa_supported(SimdIsa::kSse2)) return SimdIsa::kSse2;
  return SimdIsa::kGeneric;
}

std::mutex g_isa_mutex;
bool g_isa_env_loaded CUDALIGN_GUARDED_BY(g_isa_mutex) = false;
bool g_isa_forced CUDALIGN_GUARDED_BY(g_isa_mutex) = false;
SimdIsa g_isa CUDALIGN_GUARDED_BY(g_isa_mutex) = SimdIsa::kGeneric;

/// Parses CUDALIGN_SIMD once (under g_isa_mutex). Unknown or unsupported
/// values fail fast: a forced baseline that silently ran AVX2 anyway would
/// invalidate exactly the comparisons the override exists for.
void load_isa_env_locked() CUDALIGN_REQUIRES(g_isa_mutex) {
  g_isa_env_loaded = true;
  const char* env = std::getenv("CUDALIGN_SIMD");
  if (env == nullptr || *env == '\0') return;
  const std::string_view value(env);
  if (value == "auto") return;
  SimdIsa isa = SimdIsa::kGeneric;
  if (value == "generic") {
    isa = SimdIsa::kGeneric;
  } else if (value == "sse2") {
    isa = SimdIsa::kSse2;
  } else if (value == "avx2") {
    isa = SimdIsa::kAvx2;
  } else if (value == "avx512") {
    isa = SimdIsa::kAvx512;
  } else {
    std::fprintf(stderr,
                 "cudalign: unknown SIMD ISA in CUDALIGN_SIMD: \"%s\"\n"
                 "valid values: auto, generic, sse2, avx2, avx512\n",
                 env);
    std::exit(2);
  }
  if (!isa_supported(isa)) {
    std::fprintf(stderr, "cudalign: CUDALIGN_SIMD=%s is not available in this build/CPU\n", env);
    std::exit(2);
  }
  g_isa_forced = true;
  g_isa = isa;
}

}  // namespace

SimdIsa active_simd_isa() noexcept {
  std::lock_guard lock(g_isa_mutex);
  if (!g_isa_env_loaded) load_isa_env_locked();
  return g_isa_forced ? g_isa : best_isa();
}

void set_simd_isa_override(SimdIsa isa) {
  CUDALIGN_CHECK(isa_supported(isa), "SIMD ISA not available in this build/CPU: " +
                                         std::string(simd_isa_name(isa)));
  std::lock_guard lock(g_isa_mutex);
  g_isa_env_loaded = true;  // An explicit override supersedes the environment.
  g_isa_forced = true;
  g_isa = isa;
}

void clear_simd_isa_override() noexcept {
  std::lock_guard lock(g_isa_mutex);
  g_isa_env_loaded = true;
  g_isa_forced = false;
}

void reload_simd_isa_from_env() {
  std::lock_guard lock(g_isa_mutex);
  g_isa_forced = false;
  load_isa_env_locked();
}

std::string_view simd_isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kGeneric:
      return "generic";
    case SimdIsa::kSse2:
      return "sse2";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

namespace detail {

bool striped8_can_run(const TileJob& job) {
  return vector_can_run(job) && lane_envelope_admits(job, kLaneEnvelope8);
}

bool striped16_can_run(const TileJob& job) {
  return vector_can_run(job) && lane_envelope_admits(job, kLaneEnvelope16);
}

template <typename LaneT, bool kBest>
TileResult run_striped(const TileJob& job, TileScratch& scratch) {
  switch (active_simd_isa()) {
    case SimdIsa::kAvx512:
      return run_striped_avx512<LaneT, kBest>(job, scratch);
    case SimdIsa::kAvx2:
      return run_striped_avx2<LaneT, kBest>(job, scratch);
    case SimdIsa::kSse2:
#if defined(__SSE2__)
      return run_striped_core<Sse2Backend<LaneT>, kBest>(job, scratch);
#else
      break;  // Unreachable: active_simd_isa never reports an unsupported ISA.
#endif
    case SimdIsa::kGeneric:
      break;
  }
  if constexpr (sizeof(LaneT) == 1) {
    return run_striped_core<Generic8, kBest>(job, scratch);
  } else {
    return run_striped_core<Generic16, kBest>(job, scratch);
  }
}

template TileResult run_striped<std::int8_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped<std::int8_t, true>(const TileJob&, TileScratch&);
template TileResult run_striped<std::int16_t, false>(const TileJob&, TileScratch&);
template TileResult run_striped<std::int16_t, true>(const TileJob&, TileScratch&);

}  // namespace detail

}  // namespace cudalign::engine
