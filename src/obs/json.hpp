// Minimal JSON value tree: enough to emit and re-read the observability
// artifacts (run reports, bench trajectories) without an external dependency.
//
// Objects preserve insertion order so reports diff cleanly across runs;
// numbers keep their integer/double identity so counters round-trip exactly.
// Not a general-purpose JSON library: no comments, no NaN/Inf (rejected on
// write and on read), UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace cudalign::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) noexcept : value_(b) {}                // NOLINT(google-explicit-constructor)
  Json(std::int64_t n) noexcept : value_(n) {}        // NOLINT(google-explicit-constructor)
  Json(int n) noexcept : value_(static_cast<std::int64_t>(n)) {}  // NOLINT
  Json(double d) : value_(d) {}                       // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}       // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}     // NOLINT(google-explicit-constructor)
  Json(Array a) : value_(std::move(a)) {}             // NOLINT(google-explicit-constructor)
  Json(Object o) : value_(std::move(o)) {}            // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const noexcept { return holds<bool>(); }
  [[nodiscard]] bool is_int() const noexcept { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_double() const noexcept { return holds<double>(); }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const noexcept { return holds<Array>(); }
  [[nodiscard]] bool is_object() const noexcept { return holds<Object>(); }

  /// Object builder: sets (or replaces) `key`; returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Array builder: appends `value`; returns *this for chaining.
  Json& push(Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Object lookup; throws Error naming the key when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Accepts both integer and double values.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Serializes with `indent` spaces per level (0 = single line).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; throws Error with a byte offset on any
  /// syntax problem or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> value_;
};

}  // namespace cudalign::obs
