// Live progress line for long pipeline runs (the paper's chromosome pair
// takes 18.5 h on the GTX 285): stage, completion bar, elapsed and ETA,
// driven by the pipeline's per-stage fraction callback — which Stage 1 feeds
// per completed external diagonal, the unit of the paper's wavefront.
#pragma once

#include <cstdio>

#include "common/timer.hpp"

namespace cudalign::obs {

class ProgressMeter {
 public:
  /// Writes to `out` (default stderr, so piped stdout stays clean). Updates
  /// are rate-limited to one line per `min_interval_s` except on stage
  /// transitions and completion.
  explicit ProgressMeter(std::FILE* out = stderr, double min_interval_s = 0.1);
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;
  ~ProgressMeter();

  /// Matches PipelineOptions::progress: stage in 1..6, fraction in [0, 1].
  void update(int stage, double fraction);

  /// Erases the live line (call once the final summary is about to print).
  void finish();

 private:
  void render(int stage, double fraction);

  std::FILE* out_;
  double min_interval_;
  Timer elapsed_;       ///< Whole run.
  Timer stage_clock_;   ///< Current stage (drives the ETA).
  Timer since_print_;
  int current_stage_ = 0;
  bool dirty_line_ = false;
  bool finished_ = false;
};

}  // namespace cudalign::obs
