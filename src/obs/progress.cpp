#include "obs/progress.hpp"

#include <algorithm>

#include "common/format.hpp"

namespace cudalign::obs {

ProgressMeter::ProgressMeter(std::FILE* out, double min_interval_s)
    : out_(out), min_interval_(min_interval_s) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::update(int stage, double fraction) {
  if (finished_) return;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const bool stage_changed = stage != current_stage_;
  if (stage_changed) {
    current_stage_ = stage;
    stage_clock_.reset();
  }
  if (!stage_changed && fraction < 1.0 && since_print_.seconds() < min_interval_) return;
  render(stage, fraction);
  since_print_.reset();
}

void ProgressMeter::render(int stage, double fraction) {
  constexpr int kBarWidth = 24;
  const int filled = static_cast<int>(fraction * kBarWidth);
  char bar[kBarWidth + 1];
  for (int k = 0; k < kBarWidth; ++k) bar[k] = k < filled ? '#' : '.';
  bar[kBarWidth] = '\0';

  // Stage ETA from the fraction completed so far; unknowable until the stage
  // has made measurable progress.
  std::string eta = "--";
  if (fraction > 0 && fraction < 1) {
    eta = format_seconds(stage_clock_.seconds() * (1.0 - fraction) / fraction) + "s";
  }
  std::fprintf(out_, "\rstage %d/6 [%s] %5.1f%%  elapsed %ss  eta %s   ", stage, bar,
               fraction * 100.0, format_seconds(elapsed_.seconds()).c_str(), eta.c_str());
  std::fflush(out_);
  dirty_line_ = true;
}

void ProgressMeter::finish() {
  if (finished_) return;
  finished_ = true;
  if (dirty_line_) {
    std::fprintf(out_, "\n");
    std::fflush(out_);
  }
}

}  // namespace cudalign::obs
