#include "obs/telemetry.hpp"

#include "common/error.hpp"

namespace cudalign::obs {

namespace {

Json span_to_json(const Span& span) {
  Json node = Json::object();
  node.set("name", span.name);
  node.set("seconds", span.seconds);
  if (!span.children.empty()) {
    Json children = Json::array();
    for (const Span& child : span.children) children.push(span_to_json(child));
    node.set("children", std::move(children));
  }
  return node;
}

}  // namespace

void Telemetry::begin(std::string name) {
  Span& parent = stack_.empty() ? root_ : *stack_.back().span;
  parent.children.push_back(Span{std::move(name), 0, {}});
  stack_.push_back(Frame{&parent.children.back(), Clock::now()});
}

void Telemetry::end() {
  CUDALIGN_CHECK(!stack_.empty(), "Telemetry::end with no open span");
  const Frame frame = stack_.back();
  stack_.pop_back();
  frame.span->seconds = std::chrono::duration<double>(Clock::now() - frame.start).count();
}

const Span& Telemetry::finish() {
  while (!stack_.empty()) end();
  root_.seconds = std::chrono::duration<double>(Clock::now() - started_).count();
  return root_;
}

Json Telemetry::to_json() const { return span_to_json(root_); }

}  // namespace cudalign::obs
