#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace cudalign::obs {

namespace {

/// Parser depth cap: the run report nests ~6 levels; 64 guards against
/// adversarial input without limiting any legitimate artifact.
constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void check(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    check(depth < kMaxDepth, "nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      check(consume_literal("true"), "bad literal");
      return Json(true);
    }
    if (c == 'f') {
      check(consume_literal("false"), "bad literal");
      return Json(false);
    }
    if (c == 'n') {
      check(consume_literal("null"), "bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      check(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        check(static_cast<unsigned char>(c) >= 0x20, "unescaped control character");
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Reports only ever escape control characters; encode the code
          // point as UTF-8 (surrogate pairs are not combined — they do not
          // occur in any artifact this library writes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0u | (code >> 6));
            out += static_cast<char>(0x80u | (code & 0x3Fu));
          } else {
            out += static_cast<char>(0xE0u | (code >> 12));
            out += static_cast<char>(0x80u | ((code >> 6) & 0x3Fu));
            out += static_cast<char>(0x80u | (code & 0x3Fu));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    check(pos_ > start && !(pos_ == start + 1 && text_[start] == '-'), "bad number");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      if (integral) return Json(static_cast<std::int64_t>(std::stoll(token)));
      const double d = std::stod(token);
      check(std::isfinite(d), "non-finite number");
      return Json(d);
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::set(std::string key, Json value) {
  CUDALIGN_CHECK(is_object(), "Json::set on a non-object value");
  auto& members = std::get<Object>(value_);
  for (auto& [k, v] : members) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  CUDALIGN_CHECK(is_array(), "Json::push on a non-array value");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  CUDALIGN_CHECK(found != nullptr, "JSON object has no key '" + std::string(key) + "'");
  return *found;
}

bool Json::as_bool() const {
  CUDALIGN_CHECK(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  CUDALIGN_CHECK(is_int(), "JSON value is not an integer");
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  CUDALIGN_CHECK(is_double(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  CUDALIGN_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  CUDALIGN_CHECK(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  CUDALIGN_CHECK(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (is_double()) {
    const double d = std::get<double>(value_);
    CUDALIGN_CHECK(std::isfinite(d), "cannot serialize a non-finite number to JSON");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
    // Keep the integer/double distinction through a round-trip.
    if (out.find_first_of(".eE", out.size() - std::char_traits<char>::length(buf)) ==
        std::string::npos) {
      out += ".0";
    }
  } else if (is_string()) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const Array& items = std::get<Array>(value_);
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      items[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const Object& members = std::get<Object>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      append_escaped(out, members[i].first);
      out += indent > 0 ? ": " : ":";
      members[i].second.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cudalign::obs
