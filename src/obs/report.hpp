// The versioned machine-readable run report (DESIGN.md "Observability"): a
// single JSON document capturing everything a pipeline run measured — inputs,
// options, per-stage counters, SRA traffic, partition statistics and the span
// tree. The schema is intentionally append-only: consumers match on
// `schema` + `schema_version` and new fields only ever add keys.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace cudalign::obs {

inline constexpr const char* kReportSchemaName = "cudalign-run-report";
inline constexpr int kReportSchemaVersion = 1;

/// Everything the report builder reads. All pointers are borrowed and may not
/// be null except `telemetry` (omitting it omits the "spans" subtree).
struct ReportContext {
  std::string s0_name;
  Index s0_length = 0;
  std::string s1_name;
  Index s1_length = 0;
  const core::PipelineOptions* options = nullptr;
  const core::PipelineResult* result = nullptr;
  const Telemetry* telemetry = nullptr;
};

/// Builds the schema-v1 report document. Call Telemetry::finish() first so
/// the span tree is closed and timed.
[[nodiscard]] Json build_run_report(const ReportContext& ctx);

/// Serializes `report` (2-space indent, trailing newline) to `path`.
void write_report_file(const Json& report, const std::filesystem::path& path);

/// Structural validation of a (parsed) run report: schema identity, required
/// keys, six stages, and the cross-counter consistency invariants (Stage-1
/// cells + pruned cells == m*n; Stage-1 rows flushed == special rows saved;
/// totals == sum over stages). Returns human-readable problems, empty if the
/// document is a well-formed v1 report. Used by `cudalign report-check`.
[[nodiscard]] std::vector<std::string> validate_run_report(const Json& report);

}  // namespace cudalign::obs
