// Hierarchical run telemetry: a tree of wall-time spans recorded against a
// monotonic clock (pipeline -> stage -> external-diagonal bucket).
//
// Near-zero overhead when idle: every producer holds a `Telemetry*` that is
// null unless the caller opted in (--report), so the disabled path is one
// pointer test. The recorder itself is driver-thread-only by design — stages
// open spans between engine runs and the engine buckets diagonals on the
// caller thread, exactly where the executor already serializes its hooks;
// never share one Telemetry across concurrently-running producers.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cudalign::obs {

/// One node of the span tree. `seconds` is the span's own wall time
/// (inclusive of children, as measured between begin and end).
struct Span {
  std::string name;
  double seconds = 0;
  std::vector<Span> children;
};

class Telemetry {
 public:
  Telemetry() : started_(Clock::now()) {}

  /// Opens a child span of the innermost open span (of the root when none).
  void begin(std::string name);

  /// Closes the innermost open span, recording its wall time. Throws when no
  /// span is open — unbalanced instrumentation is a bug, not a state.
  void end();

  /// Number of currently open spans (instrumentation sanity checks).
  [[nodiscard]] std::size_t open_spans() const noexcept { return stack_.size(); }

  /// Closes any still-open spans, stamps the root's total wall time, and
  /// returns the tree. Idempotent; further begin/end calls keep recording.
  const Span& finish();

  [[nodiscard]] const Span& root() const noexcept { return root_; }

  /// The span tree as JSON: {"name", "seconds", "children": [...]}; children
  /// are omitted when empty. Call after finish().
  [[nodiscard]] Json to_json() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Frame {
    Span* span;  ///< Element of its parent's children; stable while open (the
                 ///< parent only grows its children list while it is itself
                 ///< the innermost span).
    Clock::time_point start;
  };

  Span root_{"run", 0, {}};
  std::vector<Frame> stack_;
  Clock::time_point started_;
};

/// RAII span; tolerates a null recorder so call sites stay branch-free.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, std::string name) : telemetry_(telemetry) {
    if (telemetry_ != nullptr) telemetry_->begin(std::move(name));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (telemetry_ != nullptr) telemetry_->end();
  }

 private:
  Telemetry* telemetry_;
};

}  // namespace cudalign::obs
