#include "obs/report.hpp"

#include <algorithm>

#include "common/io_util.hpp"
#include "engine/kernel_registry.hpp"

namespace cudalign::obs {

namespace {

Json grid_json(const engine::GridSpec& grid) {
  return Json::object()
      .set("blocks", static_cast<std::int64_t>(grid.blocks))
      .set("threads", static_cast<std::int64_t>(grid.threads))
      .set("alpha", static_cast<std::int64_t>(grid.alpha))
      .set("strip_rows", static_cast<std::int64_t>(grid.strip_rows()));
}

Json crosspoint_json(const core::Crosspoint& cp) {
  return Json::object()
      .set("i", static_cast<std::int64_t>(cp.i))
      .set("j", static_cast<std::int64_t>(cp.j))
      .set("score", static_cast<std::int64_t>(cp.score))
      .set("type", static_cast<std::int64_t>(static_cast<int>(cp.type)));
}

Json stage_json(int stage, const core::StageStats& s) {
  Json kernels = Json::array();
  for (std::size_t k = 0; k < s.kernels.size(); ++k) {
    if (s.kernels[k].tiles == 0) continue;
    kernels.push(Json::object()
                     .set("name", engine::kernel_info(static_cast<engine::KernelId>(k)).name)
                     .set("tiles", static_cast<std::int64_t>(s.kernels[k].tiles))
                     .set("cells", static_cast<std::int64_t>(s.kernels[k].cells)));
  }
  return Json::object()
      .set("stage", stage)
      .set("seconds", s.seconds)
      .set("cells", static_cast<std::int64_t>(s.cells))
      .set("gcups", s.gcups())
      .set("crosspoints", static_cast<std::int64_t>(s.crosspoints))
      .set("tiles", static_cast<std::int64_t>(s.tiles))
      .set("tiles_per_second",
           s.seconds > 0 ? static_cast<double>(s.tiles) / s.seconds : 0.0)
      .set("diagonals", static_cast<std::int64_t>(s.diagonals))
      .set("tiles_stolen", static_cast<std::int64_t>(s.tiles_stolen))
      .set("starvation_waits", static_cast<std::int64_t>(s.starvation_waits))
      .set("blocks_used", static_cast<std::int64_t>(s.blocks_used))
      .set("bus_ram_bytes", static_cast<std::int64_t>(s.ram_bytes))
      .set("hbus", Json::object()
                       .set("reads", static_cast<std::int64_t>(s.hbus_reads))
                       .set("writes", static_cast<std::int64_t>(s.hbus_writes))
                       .set("bytes", s.hbus_bytes))
      .set("vbus", Json::object()
                       .set("reads", static_cast<std::int64_t>(s.vbus_reads))
                       .set("writes", static_cast<std::int64_t>(s.vbus_writes))
                       .set("bytes", s.vbus_bytes))
      .set("sra", Json::object()
                      .set("rows_flushed", static_cast<std::int64_t>(s.sra_rows_flushed))
                      .set("rows_acked", static_cast<std::int64_t>(s.sra_rows_acked))
                      .set("rows_read", static_cast<std::int64_t>(s.sra_rows_read))
                      .set("bytes_flushed", s.sra_bytes_flushed)
                      .set("bytes_read", s.sra_bytes_read)
                      .set("flush_queue_peak", static_cast<std::int64_t>(s.sra_flush_queue_peak))
                      .set("flush_wait_seconds", s.sra_flush_wait_seconds)
                      .set("writer_busy_seconds", s.sra_writer_busy_seconds)
                      // Fraction of flush I/O hidden behind compute: 1 when
                      // the writer thread absorbed it all, 0 when every
                      // second stalled the wavefront (synchronous mode).
                      .set("overlap_ratio",
                           s.sra_writer_busy_seconds > 0
                               ? std::max(0.0, s.sra_writer_busy_seconds -
                                                   s.sra_flush_wait_seconds) /
                                     s.sra_writer_busy_seconds
                               : 0.0))
      .set("kernels", std::move(kernels));
}

}  // namespace

Json build_run_report(const ReportContext& ctx) {
  CUDALIGN_CHECK(ctx.options != nullptr && ctx.result != nullptr,
                 "run report needs the pipeline options and result");
  const core::PipelineOptions& opt = *ctx.options;
  const core::PipelineResult& res = *ctx.result;

  Json report = Json::object();
  report.set("schema", kReportSchemaName);
  report.set("schema_version", kReportSchemaVersion);

  report.set("inputs",
             Json::object()
                 .set("s0", Json::object()
                                .set("name", ctx.s0_name)
                                .set("length", static_cast<std::int64_t>(ctx.s0_length)))
                 .set("s1", Json::object()
                                .set("name", ctx.s1_name)
                                .set("length", static_cast<std::int64_t>(ctx.s1_length))));

  report.set("options",
             Json::object()
                 .set("scheme", Json::object()
                                    .set("match", static_cast<std::int64_t>(opt.scheme.match))
                                    .set("mismatch",
                                         static_cast<std::int64_t>(opt.scheme.mismatch))
                                    .set("gap_first",
                                         static_cast<std::int64_t>(opt.scheme.gap_first))
                                    .set("gap_ext",
                                         static_cast<std::int64_t>(opt.scheme.gap_ext)))
                 .set("sra_rows_budget", opt.sra_rows_budget)
                 .set("sra_cols_budget", opt.sra_cols_budget)
                 .set("grid_stage1", grid_json(opt.grid_stage1))
                 .set("grid_stage23", grid_json(opt.grid_stage23))
                 .set("max_partition_size", static_cast<std::int64_t>(opt.max_partition_size))
                 .set("flush_special_rows", opt.flush_special_rows)
                 .set("block_pruning", opt.block_pruning)
                 .set("executor", engine::executor_name(opt.executor))
                 .set("save_special_columns", opt.save_special_columns)
                 .set("balanced_splitting", opt.balanced_splitting)
                 .set("orthogonal_stage4", opt.orthogonal_stage4)
                 .set("run_stage6", opt.run_stage6));

  report.set("result", Json::object()
                           .set("empty", res.empty)
                           .set("best_score", static_cast<std::int64_t>(res.best_score))
                           .set("end", crosspoint_json(res.end_point))
                           .set("start", crosspoint_json(res.start_point)));

  Json stages = Json::array();
  for (std::size_t k = 0; k < res.stages.size(); ++k) {
    stages.push(stage_json(static_cast<int>(k) + 1, res.stages[k]));
  }
  report.set("stages", std::move(stages));

  report.set("stage1", Json::object()
                           .set("pruned_cells", static_cast<std::int64_t>(res.stage1_pruned_cells))
                           .set("special_rows_saved",
                                static_cast<std::int64_t>(res.special_rows_saved))
                           .set("flush_interval", static_cast<std::int64_t>(res.flush_interval)));

  Json iterations = Json::array();
  for (const core::Stage4Iteration& it : res.stage4_iterations) {
    iterations.push(Json::object()
                        .set("iteration", static_cast<std::int64_t>(it.iteration))
                        .set("h_max", static_cast<std::int64_t>(it.h_max))
                        .set("w_max", static_cast<std::int64_t>(it.w_max))
                        .set("crosspoints", static_cast<std::int64_t>(it.crosspoints))
                        .set("seconds", it.seconds)
                        .set("cells", static_cast<std::int64_t>(it.cells)));
  }
  report.set("stage4", Json::object().set("iterations", std::move(iterations)));

  report.set("stage5", Json::object()
                           .set("partitions", static_cast<std::int64_t>(res.stage5_partitions))
                           .set("h_max", static_cast<std::int64_t>(res.stage5_h_max))
                           .set("w_max", static_cast<std::int64_t>(res.stage5_w_max)));

  report.set("sra", Json::object()
                        .set("rows_budget", opt.sra_rows_budget)
                        .set("cols_budget", opt.sra_cols_budget)
                        .set("peak_bytes", res.sra_peak_bytes)
                        .set("special_rows_saved",
                             static_cast<std::int64_t>(res.special_rows_saved))
                        .set("special_cols_saved",
                             static_cast<std::int64_t>(res.special_cols_saved)));

  if (res.resume.enabled) {
    report.set("resume",
               Json::object()
                   .set("resumed", res.resume.resumed)
                   .set("resumed_stage", res.resume.resumed_stage)
                   .set("resumed_from_row", static_cast<std::int64_t>(res.resume.resumed_from_row))
                   .set("cells_skipped", static_cast<std::int64_t>(res.resume.cells_skipped))
                   .set("rows_restored", static_cast<std::int64_t>(res.resume.rows_restored))
                   .set("checkpoint_bytes_written", res.resume.checkpoint_bytes_written)
                   .set("checkpoint_bytes_read", res.resume.checkpoint_bytes_read)
                   .set("checkpoint_updates",
                        static_cast<std::int64_t>(res.resume.checkpoint_updates)));
  }

  Json counts = Json::array();
  for (const Index c : res.crosspoint_counts) counts.push(static_cast<std::int64_t>(c));
  report.set("crosspoint_counts", std::move(counts));
  report.set("partition_h_max_after_stage3",
             static_cast<std::int64_t>(res.h_max_after_stage3));
  report.set("partition_w_max_after_stage3",
             static_cast<std::int64_t>(res.w_max_after_stage3));

  WideScore total_cells = 0;
  for (const core::StageStats& s : res.stages) total_cells += s.cells;
  const double total_seconds = res.total_seconds();
  report.set("totals",
             Json::object()
                 .set("seconds", total_seconds)
                 .set("cells", static_cast<std::int64_t>(total_cells))
                 .set("gcups", total_seconds > 0
                                   ? static_cast<double>(total_cells) / total_seconds / 1e9
                                   : 0.0));

  if (ctx.telemetry != nullptr) report.set("spans", ctx.telemetry->to_json());
  return report;
}

void write_report_file(const Json& report, const std::filesystem::path& path) {
  write_file(path, report.dump(2) + "\n");
}

std::vector<std::string> validate_run_report(const Json& report) {
  std::vector<std::string> problems;
  auto require = [&](bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
    return ok;
  };

  if (!require(report.is_object(), "report is not a JSON object")) return problems;

  const Json* schema = report.find("schema");
  require(schema != nullptr && schema->is_string() && schema->as_string() == kReportSchemaName,
          std::string("schema is not \"") + kReportSchemaName + "\"");
  const Json* version = report.find("schema_version");
  require(version != nullptr && version->is_int() &&
              version->as_int() == kReportSchemaVersion,
          "schema_version is not " + std::to_string(kReportSchemaVersion));

  for (const char* key : {"inputs", "options", "result", "stages", "stage1", "stage4",
                          "stage5", "sra", "crosspoint_counts", "totals"}) {
    require(report.find(key) != nullptr, std::string("missing key \"") + key + "\"");
  }

  const Json* stages = report.find("stages");
  if (!require(stages != nullptr && stages->is_array() && stages->as_array().size() == 6,
               "stages is not an array of 6 entries")) {
    return problems;
  }
  WideScore total_cells = 0;
  for (const Json& stage : stages->as_array()) {
    if (!require(stage.is_object(), "stage entry is not an object")) continue;
    for (const char* key :
         {"stage", "seconds", "cells", "gcups", "tiles", "tiles_per_second", "diagonals",
          "tiles_stolen", "starvation_waits", "hbus", "vbus", "sra"}) {
      require(stage.find(key) != nullptr,
              std::string("stage entry missing key \"") + key + "\"");
    }
    if (const Json* cells = stage.find("cells"); cells != nullptr && cells->is_int()) {
      total_cells += cells->as_int();
    }
  }

  const Json* inputs = report.find("inputs");
  const Json* stage1 = report.find("stage1");
  const Json* sra = report.find("sra");
  const Json* totals = report.find("totals");
  if (inputs == nullptr || stage1 == nullptr || sra == nullptr || totals == nullptr ||
      !inputs->is_object() || !stage1->is_object() || !sra->is_object() ||
      !totals->is_object()) {
    return problems;
  }

  // A resumed run accounts the work it did NOT redo in the `resume` block;
  // the stage-1 invariants below fold those amounts back in.
  std::int64_t cells_skipped = 0;
  std::int64_t rows_restored = 0;
  if (const Json* resume = report.find("resume"); resume != nullptr && resume->is_object()) {
    for (const char* key : {"resumed", "resumed_stage", "resumed_from_row", "cells_skipped",
                            "rows_restored", "checkpoint_bytes_written",
                            "checkpoint_bytes_read", "checkpoint_updates"}) {
      require(resume->find(key) != nullptr,
              std::string("resume block missing key \"") + key + "\"");
    }
    if (const Json* v = resume->find("cells_skipped"); v != nullptr && v->is_int()) {
      cells_skipped = v->as_int();
    }
    if (const Json* v = resume->find("rows_restored"); v != nullptr && v->is_int()) {
      rows_restored = v->as_int();
    }
  }

  // Invariant: Stage 1 visits every cell of the m*n matrix except the pruned
  // ones and the ones a resume skipped — together they tile the full grid.
  const std::int64_t m = inputs->at("s0").at("length").as_int();
  const std::int64_t n = inputs->at("s1").at("length").as_int();
  const std::int64_t stage1_cells = stages->as_array()[0].at("cells").as_int();
  const std::int64_t pruned = stage1->at("pruned_cells").as_int();
  require(stage1_cells + pruned + cells_skipped == m * n,
          "stage 1 cells (" + std::to_string(stage1_cells) + ") + pruned (" +
              std::to_string(pruned) + ") + skipped (" + std::to_string(cells_skipped) +
              ") != m*n (" + std::to_string(m * n) + ")");

  // Invariant: every saved special row was either flushed by this run's
  // Stage 1 or restored from the checkpoint.
  const std::int64_t rows_flushed =
      stages->as_array()[0].at("sra").at("rows_flushed").as_int();
  const std::int64_t rows_saved = sra->at("special_rows_saved").as_int();
  require(rows_flushed + rows_restored == rows_saved,
          "stage 1 SRA rows_flushed (" + std::to_string(rows_flushed) + ") + restored (" +
              std::to_string(rows_restored) + ") != special_rows_saved (" +
              std::to_string(rows_saved) + ")");

  // Invariant (async flush pipeline): every row Stage 1 handed to the flush
  // path was durably written and acknowledged by stage completion — a
  // wedged or failed writer cannot produce a clean report.
  const Json* rows_acked = stages->as_array()[0].at("sra").find("rows_acked");
  if (require(rows_acked != nullptr && rows_acked->is_int(),
              "stage 1 sra block missing rows_acked")) {
    require(rows_acked->as_int() == rows_flushed,
            "stage 1 SRA rows_acked (" + std::to_string(rows_acked->as_int()) +
                ") != rows_flushed (" + std::to_string(rows_flushed) + ")");
  }

  // Invariant: totals.cells is the sum over the stages array.
  const std::int64_t reported_total = totals->at("cells").as_int();
  require(reported_total == total_cells,
          "totals.cells (" + std::to_string(reported_total) + ") != sum over stages (" +
              std::to_string(total_cells) + ")");

  return problems;
}

}  // namespace cudalign::obs
