// Stage-6 visualization (paper §IV-G, Figure 12).
//
// Two outputs, like the paper's: a textual rendering of the alignment (the
// "142 MB text file" for the chromosome pair — here produced on demand for
// any window), and a dot-plot of the alignment path (the Figure 12 panel),
// emitted both as TSV coordinates for external plotting and as an ASCII
// raster for the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "alignment/alignment.hpp"

namespace cudalign::alignment {

struct RenderOptions {
  int width = 60;          ///< Columns per text block.
  bool show_coords = true; ///< Prefix each line with 1-based coordinates.
};

/// Streams the classic three-line textual rendering (sequence 0, match bars,
/// sequence 1). For huge alignments this writes O(length) output; callers can
/// render windows by slicing the transcript first.
void render_text(std::ostream& os, const Alignment& alignment, seq::SequenceView s0,
                 seq::SequenceView s1, const RenderOptions& options = {});

/// Convenience: render to a string (tests, small alignments).
[[nodiscard]] std::string render_text(const Alignment& alignment, seq::SequenceView s0,
                                      seq::SequenceView s1, const RenderOptions& options = {});

/// One sampled point of the alignment path.
struct PathPoint {
  Index i = 0;
  Index j = 0;
};

/// Samples at most `max_points` evenly spaced (by alignment column) points of
/// the path, always including both endpoints. This is the Figure 12 data set.
[[nodiscard]] std::vector<PathPoint> sample_path(const Alignment& alignment,
                                                 Index max_points = 2048);

/// Writes sampled points as TSV ("i\tj" rows) for external plotting.
void write_path_tsv(std::ostream& os, const std::vector<PathPoint>& points);

/// ASCII dot-plot raster of the path over the full DP matrix extent
/// (rows x cols characters), for terminal inspection à la Figure 12.
[[nodiscard]] std::string ascii_dotplot(const Alignment& alignment, Index m, Index n,
                                        int rows = 24, int cols = 64);

}  // namespace cudalign::alignment
