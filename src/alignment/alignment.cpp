#include "alignment/alignment.hpp"

namespace cudalign::alignment {

Score score_transcript(seq::SequenceView s0, seq::SequenceView s1, const Transcript& transcript,
                       Index i0, Index j0, const scoring::Scheme& scheme, dp::CellState start) {
  WideScore total = 0;
  Index i = i0;
  Index j = j0;
  // Tracks whether we are continuing a gap run of each direction across run
  // boundaries (runs of the same op may be split across partition seams; the
  // RLE coalesces within a transcript, but the *leading* run may continue an
  // upstream gap, signalled by `start`).
  bool in_e = start == dp::CellState::kE;
  bool in_f = start == dp::CellState::kF;
  for (const auto& run : transcript.runs()) {
    switch (run.op) {
      case Op::kDiagonal:
        for (Index k = 0; k < run.len; ++k) {
          total += scheme.pair(s0[static_cast<std::size_t>(i + k)],
                               s1[static_cast<std::size_t>(j + k)]);
        }
        i += run.len;
        j += run.len;
        in_e = in_f = false;
        break;
      case Op::kGapS0:
        total -= static_cast<WideScore>(in_e ? scheme.gap_ext : scheme.gap_first);
        total -= static_cast<WideScore>(run.len - 1) * scheme.gap_ext;
        j += run.len;
        in_e = true;
        in_f = false;
        break;
      case Op::kGapS1:
        total -= static_cast<WideScore>(in_f ? scheme.gap_ext : scheme.gap_first);
        total -= static_cast<WideScore>(run.len - 1) * scheme.gap_ext;
        i += run.len;
        in_f = true;
        in_e = false;
        break;
    }
  }
  CUDALIGN_CHECK(total >= kNegInf && total <= -static_cast<WideScore>(kNegInf),
                 "transcript score overflows Score");
  return static_cast<Score>(total);
}

void validate(const Alignment& alignment, seq::SequenceView s0, seq::SequenceView s1,
              const scoring::Scheme& scheme) {
  CUDALIGN_CHECK(alignment.i0 >= 0 && alignment.j0 >= 0, "alignment start out of range");
  CUDALIGN_CHECK(alignment.i1 <= static_cast<Index>(s0.size()) &&
                     alignment.j1 <= static_cast<Index>(s1.size()),
                 "alignment end out of range");
  CUDALIGN_CHECK(alignment.i0 <= alignment.i1 && alignment.j0 <= alignment.j1,
                 "alignment coordinates not monotone");
  CUDALIGN_CHECK(alignment.transcript.rows_consumed() == alignment.rows(),
                 "transcript consumes a different number of S0 bases than the coordinates span");
  CUDALIGN_CHECK(alignment.transcript.cols_consumed() == alignment.cols(),
                 "transcript consumes a different number of S1 bases than the coordinates span");
  const Score recomputed =
      score_transcript(s0, s1, alignment.transcript, alignment.i0, alignment.j0, scheme);
  CUDALIGN_CHECK(recomputed == alignment.score,
                 "recomputed score " + std::to_string(recomputed) + " != reported score " +
                     std::to_string(alignment.score));
}

Stats compute_stats(const Alignment& alignment, seq::SequenceView s0, seq::SequenceView s1,
                    const scoring::Scheme& scheme) {
  Stats stats;
  Index i = alignment.i0;
  Index j = alignment.j0;
  for (const auto& run : alignment.transcript.runs()) {
    stats.columns += run.len;
    switch (run.op) {
      case Op::kDiagonal:
        for (Index k = 0; k < run.len; ++k) {
          const auto a = s0[static_cast<std::size_t>(i + k)];
          const auto b = s1[static_cast<std::size_t>(j + k)];
          if (scheme.pair(a, b) == scheme.match && a == b) {
            ++stats.matches;
          } else {
            ++stats.mismatches;
          }
        }
        i += run.len;
        j += run.len;
        break;
      case Op::kGapS0:
      case Op::kGapS1:
        stats.gap_openings += 1;
        stats.gap_extensions += run.len - 1;
        if (run.op == Op::kGapS0) {
          j += run.len;
        } else {
          i += run.len;
        }
        break;
    }
  }
  stats.match_score = stats.matches * scheme.match;
  stats.mismatch_score = stats.mismatches * scheme.mismatch;
  stats.gap_open_score = -stats.gap_openings * scheme.gap_first;
  stats.gap_ext_score = -stats.gap_extensions * scheme.gap_ext;
  return stats;
}

}  // namespace cudalign::alignment
