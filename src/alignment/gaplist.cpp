#include "alignment/gaplist.hpp"

#include <fstream>
#include <sstream>

#include "common/io_util.hpp"

namespace cudalign::alignment {

namespace {

constexpr std::uint32_t kMagic = 0x43414C32;  // "CAL2"
constexpr std::uint32_t kVersion = 1;

void write_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    const char byte = static_cast<char>((v & 0x7F) | 0x80);
    os.put(byte);
    v >>= 7;
  }
  os.put(static_cast<char>(v));
  CUDALIGN_CHECK(os.good(), "varint write failed");
}

[[nodiscard]] std::uint64_t read_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    CUDALIGN_CHECK(c != EOF, "truncated varint");
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
    CUDALIGN_CHECK(shift < 64, "varint too long");
  }
}

/// Gap starts are strictly increasing along the path, so coordinates are
/// delta-coded against the previous entry of the same list.
void write_gap_list(std::ostream& os, const std::vector<GapEntry>& gaps) {
  write_varint(os, gaps.size());
  Index prev_i = 0, prev_j = 0;
  for (const auto& gap : gaps) {
    CUDALIGN_CHECK(gap.i >= prev_i && gap.j >= prev_j && gap.length > 0,
                   "gap list not in path order");
    write_varint(os, static_cast<std::uint64_t>(gap.i - prev_i));
    write_varint(os, static_cast<std::uint64_t>(gap.j - prev_j));
    write_varint(os, static_cast<std::uint64_t>(gap.length));
    prev_i = gap.i;
    prev_j = gap.j;
  }
}

[[nodiscard]] std::vector<GapEntry> read_gap_list(std::istream& is) {
  const auto count = read_varint(is);
  std::vector<GapEntry> gaps;
  gaps.reserve(count);
  Index prev_i = 0, prev_j = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    GapEntry gap;
    gap.i = prev_i + static_cast<Index>(read_varint(is));
    gap.j = prev_j + static_cast<Index>(read_varint(is));
    gap.length = static_cast<Index>(read_varint(is));
    prev_i = gap.i;
    prev_j = gap.j;
    gaps.push_back(gap);
  }
  return gaps;
}

}  // namespace

BinaryAlignment to_binary(const Alignment& alignment) {
  BinaryAlignment out;
  out.i0 = alignment.i0;
  out.j0 = alignment.j0;
  out.i1 = alignment.i1;
  out.j1 = alignment.j1;
  out.score = alignment.score;
  Index i = alignment.i0;
  Index j = alignment.j0;
  for (const auto& run : alignment.transcript.runs()) {
    switch (run.op) {
      case Op::kDiagonal:
        i += run.len;
        j += run.len;
        break;
      case Op::kGapS0:
        out.gaps_s0.push_back(GapEntry{i, j, run.len});
        j += run.len;
        break;
      case Op::kGapS1:
        out.gaps_s1.push_back(GapEntry{i, j, run.len});
        i += run.len;
        break;
    }
  }
  CUDALIGN_CHECK(i == alignment.i1 && j == alignment.j1,
                 "transcript does not reach the alignment end position");
  return out;
}

Alignment from_binary(const BinaryAlignment& binary) {
  Alignment out;
  out.i0 = binary.i0;
  out.j0 = binary.j0;
  out.i1 = binary.i1;
  out.j1 = binary.j1;
  CUDALIGN_CHECK(binary.score >= kNegInf && binary.score <= -static_cast<WideScore>(kNegInf),
                 "binary alignment score out of range");
  out.score = static_cast<Score>(binary.score);

  Index i = binary.i0;
  Index j = binary.j0;
  std::size_t p0 = 0, p1 = 0;
  // Merge the two lists in path order. Gap-run starts are unique vertices and
  // lexicographic (i, j) order equals path order for a monotone path.
  while (p0 < binary.gaps_s0.size() || p1 < binary.gaps_s1.size()) {
    const GapEntry* next = nullptr;
    bool is_s0 = false;
    if (p0 < binary.gaps_s0.size()) {
      next = &binary.gaps_s0[p0];
      is_s0 = true;
    }
    if (p1 < binary.gaps_s1.size()) {
      const GapEntry& cand = binary.gaps_s1[p1];
      if (next == nullptr || cand.i < next->i || (cand.i == next->i && cand.j < next->j)) {
        next = &cand;
        is_s0 = false;
      }
    }
    const Index diag = next->i - i;
    CUDALIGN_CHECK(diag >= 0 && next->j - j == diag,
                   "gap list is inconsistent: gap start not reachable diagonally");
    out.transcript.append(Op::kDiagonal, diag);
    i += diag;
    j += diag;
    if (is_s0) {
      out.transcript.append(Op::kGapS0, next->length);
      j += next->length;
      ++p0;
    } else {
      out.transcript.append(Op::kGapS1, next->length);
      i += next->length;
      ++p1;
    }
  }
  const Index diag = binary.i1 - i;
  CUDALIGN_CHECK(diag >= 0 && binary.j1 - j == diag,
                 "gap list is inconsistent: end position not reachable diagonally");
  out.transcript.append(Op::kDiagonal, diag);
  return out;
}

void write_binary(std::ostream& os, const BinaryAlignment& binary) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_varint(os, static_cast<std::uint64_t>(binary.i0));
  write_varint(os, static_cast<std::uint64_t>(binary.j0));
  write_varint(os, static_cast<std::uint64_t>(binary.i1));
  write_varint(os, static_cast<std::uint64_t>(binary.j1));
  // Scores may be negative in principle; zig-zag encode.
  const auto zigzag = (static_cast<std::uint64_t>(binary.score) << 1) ^
                      static_cast<std::uint64_t>(binary.score >> 63);
  write_varint(os, zigzag);
  write_gap_list(os, binary.gaps_s0);
  write_gap_list(os, binary.gaps_s1);
}

BinaryAlignment read_binary(std::istream& is) {
  CUDALIGN_CHECK(read_pod<std::uint32_t>(is) == kMagic, "not a CUDAlign binary alignment file");
  CUDALIGN_CHECK(read_pod<std::uint32_t>(is) == kVersion,
                 "unsupported binary alignment version");
  BinaryAlignment out;
  out.i0 = static_cast<Index>(read_varint(is));
  out.j0 = static_cast<Index>(read_varint(is));
  out.i1 = static_cast<Index>(read_varint(is));
  out.j1 = static_cast<Index>(read_varint(is));
  const auto zigzag = read_varint(is);
  out.score = static_cast<WideScore>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  out.gaps_s0 = read_gap_list(is);
  out.gaps_s1 = read_gap_list(is);
  return out;
}

void write_binary_file(const std::filesystem::path& path, const BinaryAlignment& binary) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CUDALIGN_CHECK(os.good(), "cannot open binary alignment file for writing: " + path.string());
  write_binary(os, binary);
  CUDALIGN_CHECK(os.good(), "error writing binary alignment file: " + path.string());
}

BinaryAlignment read_binary_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  CUDALIGN_CHECK(is.good(), "cannot open binary alignment file: " + path.string());
  return read_binary(is);
}

std::size_t encoded_size(const BinaryAlignment& binary) {
  std::ostringstream os(std::ios::binary);
  write_binary(os, binary);
  return os.str().size();
}

}  // namespace cudalign::alignment
