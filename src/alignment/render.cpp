#include "alignment/render.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace cudalign::alignment {

namespace {

/// Expands the transcript into per-column callbacks without materializing the
/// whole expansion: fn(op, i, j) is called once per alignment column with the
/// DP vertex *before* the column is consumed.
template <typename Fn>
void for_each_column(const Alignment& alignment, Fn&& fn) {
  Index i = alignment.i0;
  Index j = alignment.j0;
  for (const auto& run : alignment.transcript.runs()) {
    for (Index k = 0; k < run.len; ++k) {
      fn(run.op, i, j);
      switch (run.op) {
        case Op::kDiagonal: ++i; ++j; break;
        case Op::kGapS0: ++j; break;
        case Op::kGapS1: ++i; break;
      }
    }
  }
}

}  // namespace

void render_text(std::ostream& os, const Alignment& alignment, seq::SequenceView s0,
                 seq::SequenceView s1, const RenderOptions& options) {
  CUDALIGN_CHECK(options.width > 0, "render width must be positive");
  std::string line0, bars, line1;
  Index block_i = alignment.i0;
  Index block_j = alignment.j0;
  Index cur_i = alignment.i0;
  Index cur_j = alignment.j0;

  auto flush = [&] {
    if (line0.empty()) return;
    if (options.show_coords) {
      os << "S0 " << (block_i + 1) << '\t' << line0 << '\n';
      os << "   " << '\t' << bars << '\n';
      os << "S1 " << (block_j + 1) << '\t' << line1 << '\n';
    } else {
      os << line0 << '\n' << bars << '\n' << line1 << '\n';
    }
    os << '\n';
    line0.clear();
    bars.clear();
    line1.clear();
    block_i = cur_i;
    block_j = cur_j;
  };

  for_each_column(alignment, [&](Op op, Index i, Index j) {
    switch (op) {
      case Op::kDiagonal: {
        const auto a = s0[static_cast<std::size_t>(i)];
        const auto b = s1[static_cast<std::size_t>(j)];
        line0.push_back(seq::base_to_char(a));
        line1.push_back(seq::base_to_char(b));
        bars.push_back((a == b && a != seq::kN) ? '|' : ' ');
        cur_i = i + 1;
        cur_j = j + 1;
        break;
      }
      case Op::kGapS0:
        line0.push_back('-');
        line1.push_back(seq::base_to_char(s1[static_cast<std::size_t>(j)]));
        bars.push_back(' ');
        cur_j = j + 1;
        break;
      case Op::kGapS1:
        line0.push_back(seq::base_to_char(s0[static_cast<std::size_t>(i)]));
        line1.push_back('-');
        bars.push_back(' ');
        cur_i = i + 1;
        break;
    }
    if (static_cast<int>(line0.size()) >= options.width) flush();
  });
  flush();
}

std::string render_text(const Alignment& alignment, seq::SequenceView s0, seq::SequenceView s1,
                        const RenderOptions& options) {
  std::ostringstream os;
  render_text(os, alignment, s0, s1, options);
  return os.str();
}

std::vector<PathPoint> sample_path(const Alignment& alignment, Index max_points) {
  CUDALIGN_CHECK(max_points >= 2, "need at least two sample points");
  const Index total = alignment.length();
  std::vector<PathPoint> points;
  if (total == 0) {
    points.push_back({alignment.i0, alignment.j0});
    points.push_back({alignment.i1, alignment.j1});
    return points;
  }
  const Index stride = std::max<Index>(1, total / (max_points - 1));
  Index column = 0;
  points.push_back({alignment.i0, alignment.j0});
  for_each_column(alignment, [&](Op, Index i, Index j) {
    ++column;
    if (column % stride == 0 && column < total) points.push_back({i, j});
  });
  points.push_back({alignment.i1, alignment.j1});
  return points;
}

void write_path_tsv(std::ostream& os, const std::vector<PathPoint>& points) {
  os << "i\tj\n";
  for (const auto& p : points) os << p.i << '\t' << p.j << '\n';
}

std::string ascii_dotplot(const Alignment& alignment, Index m, Index n, int rows, int cols) {
  CUDALIGN_CHECK(rows > 0 && cols > 0, "dot plot raster must be positive");
  CUDALIGN_CHECK(m > 0 && n > 0, "dot plot needs positive matrix extents");
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), '.'));
  auto plot = [&](Index i, Index j) {
    const int r = static_cast<int>(std::min<Index>(rows - 1, i * rows / std::max<Index>(1, m)));
    const int c = static_cast<int>(std::min<Index>(cols - 1, j * cols / std::max<Index>(1, n)));
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '*';
  };
  plot(alignment.i0, alignment.j0);
  for_each_column(alignment, [&](Op, Index i, Index j) { plot(i, j); });
  plot(alignment.i1, alignment.j1);
  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace cudalign::alignment
