// Alignment value type, validation and Table-X statistics.
#pragma once

#include <string>

#include "alignment/ops.hpp"
#include "dp/dp_common.hpp"
#include "scoring/scoring.hpp"
#include "seq/sequence.hpp"

namespace cudalign::alignment {

/// A (local or global) pairwise alignment anchored at DP vertices: the path
/// runs from vertex (i0, j0) to (i1, j1); transcript columns consume
/// S0[i0..i1) and S1[j0..j1).
struct Alignment {
  Index i0 = 0, j0 = 0;
  Index i1 = 0, j1 = 0;
  Score score = 0;
  Transcript transcript;

  [[nodiscard]] Index rows() const noexcept { return i1 - i0; }
  [[nodiscard]] Index cols() const noexcept { return j1 - j0; }
  /// Alignment length in columns (the paper's "Length", Table III).
  [[nodiscard]] Index length() const noexcept { return transcript.columns(); }
};

/// Recomputes the score of a transcript applied at (i0, j0) against the full
/// sequences; `start` grants the leading-gap continuation discount (§IV-A).
[[nodiscard]] Score score_transcript(seq::SequenceView s0, seq::SequenceView s1,
                                     const Transcript& transcript, Index i0, Index j0,
                                     const scoring::Scheme& scheme,
                                     dp::CellState start = dp::CellState::kH);

/// Throws cudalign::Error unless the alignment is internally consistent
/// (geometry matches the transcript; the recomputed score equals `score`;
/// coordinates are inside the sequences).
void validate(const Alignment& alignment, seq::SequenceView s0, seq::SequenceView s1,
              const scoring::Scheme& scheme);

/// The composition table the paper reports for the human-chimpanzee
/// alignment (Table X).
struct Stats {
  WideScore matches = 0;
  WideScore mismatches = 0;
  WideScore gap_openings = 0;    ///< Number of gap runs (each charged G_first).
  WideScore gap_extensions = 0;  ///< Remaining gap symbols (charged G_ext).
  WideScore columns = 0;

  WideScore match_score = 0;
  WideScore mismatch_score = 0;
  WideScore gap_open_score = 0;
  WideScore gap_ext_score = 0;
  [[nodiscard]] WideScore total_score() const noexcept {
    return match_score + mismatch_score + gap_open_score + gap_ext_score;
  }
  /// Fraction of columns that are matches.
  [[nodiscard]] double identity() const noexcept {
    return columns == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(columns);
  }
};

[[nodiscard]] Stats compute_stats(const Alignment& alignment, seq::SequenceView s0,
                                  seq::SequenceView s1, const scoring::Scheme& scheme);

}  // namespace cudalign::alignment
