// CIGAR interop: the run-length transcript maps 1:1 onto SAM-style CIGAR
// strings, which is how downstream genomics tooling consumes alignments.
//
// Mapping (extended CIGAR, match/mismatch distinguished):
//   kDiagonal  -> '=' (match) / 'X' (mismatch), or 'M' in classic mode
//   kGapS0     -> 'I' (insertion relative to S0: consumes S1)
//   kGapS1     -> 'D' (deletion relative to S0: consumes S0)
#pragma once

#include <string>

#include "alignment/alignment.hpp"

namespace cudalign::alignment {

/// Renders the transcript as classic CIGAR ("M/I/D"). Never needs sequences.
[[nodiscard]] std::string to_cigar(const Transcript& transcript);

/// Renders extended CIGAR ("=/X/I/D"); needs the sequences to split diagonal
/// runs into match and mismatch segments.
[[nodiscard]] std::string to_cigar_extended(const Alignment& alignment, seq::SequenceView s0,
                                            seq::SequenceView s1);

/// Parses classic or extended CIGAR back into a transcript ('M', '=' and 'X'
/// all become kDiagonal). Throws on malformed input or unsupported ops
/// (clips/skips are not meaningful for pairwise DP alignments).
[[nodiscard]] Transcript from_cigar(const std::string& cigar);

}  // namespace cudalign::alignment
