// Alignment transcript vocabulary, re-exported for alignment/ consumers.
//
// The types themselves live in dp/transcript.hpp — the DP solvers produce
// transcripts, alignment/ renders and serializes them, and keeping the
// vocabulary below both modules is what breaks the historical
// dp <-> alignment include cycle (enforced by tools/cudalint/layering.manifest).
// This header remains so the established cudalign::alignment::Transcript
// spelling keeps working everywhere above dp/.
#pragma once

#include "dp/transcript.hpp"  // IWYU pragma: export

namespace cudalign::alignment {

using Op = dp::Op;
using OpRun = dp::OpRun;
using Transcript = dp::Transcript;

}  // namespace cudalign::alignment
