// Stage-5 binary alignment representation (paper §IV-F).
//
// An alignment is stored as: start and end positions, the best score, and two
// lists GAP_1 / GAP_2 of (i_gap, j_gap, length) tuples — the positions where
// gap runs open in S0 (type 1) and S1 (type 2). The characters of the
// sequences are NOT stored; Stage 6 reconstructs the textual alignment by
// walking diagonals between gap events. The on-disk codec delta+varint
// encodes coordinates, which is what makes the file ~500x smaller than the
// textual rendering (paper: 519 KB binary vs 142 MB text).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "alignment/alignment.hpp"

namespace cudalign::alignment {

/// A gap run: it opens at DP vertex (i, j) and has `length` gap columns.
struct GapEntry {
  Index i = 0;
  Index j = 0;
  Index length = 0;

  friend bool operator==(const GapEntry&, const GapEntry&) = default;
};

struct BinaryAlignment {
  Index i0 = 0, j0 = 0;  ///< Start position (paper's (i0, j0)).
  Index i1 = 0, j1 = 0;  ///< End position.
  WideScore score = 0;
  std::vector<GapEntry> gaps_s0;  ///< GAP_1: gaps in S0 (horizontal runs).
  std::vector<GapEntry> gaps_s1;  ///< GAP_2: gaps in S1 (vertical runs).

  friend bool operator==(const BinaryAlignment&, const BinaryAlignment&) = default;
};

/// Extracts the gap lists from a transcript alignment.
[[nodiscard]] BinaryAlignment to_binary(const Alignment& alignment);

/// Rebuilds the transcript by joining the gaps (paper §IV-G): walk
/// diagonally from (i0, j0), splicing in each gap run in path order, until
/// (i1, j1). Throws if the gap lists are not consistent with the endpoints.
[[nodiscard]] Alignment from_binary(const BinaryAlignment& binary);

/// Serialization (magic + version header; varint delta coding).
void write_binary(std::ostream& os, const BinaryAlignment& binary);
[[nodiscard]] BinaryAlignment read_binary(std::istream& is);
void write_binary_file(const std::filesystem::path& path, const BinaryAlignment& binary);
[[nodiscard]] BinaryAlignment read_binary_file(const std::filesystem::path& path);

/// Encoded size in bytes (what write_binary will emit), for the Stage-5/6
/// size report.
[[nodiscard]] std::size_t encoded_size(const BinaryAlignment& binary);

}  // namespace cudalign::alignment
