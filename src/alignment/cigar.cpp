#include "alignment/cigar.hpp"

#include <cctype>

namespace cudalign::alignment {

namespace {

char classic_code(Op op) {
  switch (op) {
    case Op::kGapS0: return 'I';
    case Op::kGapS1: return 'D';
    case Op::kDiagonal:
    default: return 'M';
  }
}

}  // namespace

std::string to_cigar(const Transcript& transcript) {
  std::string out;
  for (const auto& run : transcript.runs()) {
    out += std::to_string(run.len);
    out += classic_code(run.op);
  }
  return out;
}

std::string to_cigar_extended(const Alignment& alignment, seq::SequenceView s0,
                              seq::SequenceView s1) {
  std::string out;
  Index i = alignment.i0;
  Index j = alignment.j0;
  auto emit = [&](Index len, char code) {
    if (len == 0) return;
    out += std::to_string(len);
    out += code;
  };
  for (const auto& run : alignment.transcript.runs()) {
    switch (run.op) {
      case Op::kDiagonal: {
        // Split the diagonal run into maximal =/X segments.
        Index seg_start = 0;
        bool seg_match = false;
        for (Index k = 0; k < run.len; ++k) {
          const auto a = s0[static_cast<std::size_t>(i + k)];
          const auto b = s1[static_cast<std::size_t>(j + k)];
          const bool match = a == b && a != seq::kN;
          if (k == 0) {
            seg_match = match;
          } else if (match != seg_match) {
            emit(k - seg_start, seg_match ? '=' : 'X');
            seg_start = k;
            seg_match = match;
          }
        }
        emit(run.len - seg_start, seg_match ? '=' : 'X');
        i += run.len;
        j += run.len;
        break;
      }
      case Op::kGapS0:
        emit(run.len, 'I');
        j += run.len;
        break;
      case Op::kGapS1:
        emit(run.len, 'D');
        i += run.len;
        break;
    }
  }
  return out;
}

Transcript from_cigar(const std::string& cigar) {
  Transcript out;
  std::size_t pos = 0;
  while (pos < cigar.size()) {
    CUDALIGN_CHECK(std::isdigit(static_cast<unsigned char>(cigar[pos])),
                   "CIGAR: expected a length at position " + std::to_string(pos));
    Index len = 0;
    while (pos < cigar.size() && std::isdigit(static_cast<unsigned char>(cigar[pos]))) {
      len = len * 10 + (cigar[pos] - '0');
      CUDALIGN_CHECK(len < (Index{1} << 48), "CIGAR: absurd run length");
      ++pos;
    }
    CUDALIGN_CHECK(pos < cigar.size(), "CIGAR: trailing length without an op");
    CUDALIGN_CHECK(len > 0, "CIGAR: zero-length run");
    const char code = cigar[pos++];
    switch (code) {
      case 'M': case '=': case 'X':
        out.append(Op::kDiagonal, len);
        break;
      case 'I':
        out.append(Op::kGapS0, len);
        break;
      case 'D':
        out.append(Op::kGapS1, len);
        break;
      default:
        CUDALIGN_CHECK(false, std::string("CIGAR: unsupported op '") + code + "'");
    }
  }
  return out;
}

}  // namespace cudalign::alignment
