// Checked integer arithmetic for score and index math.
//
// Narrow-lane DP is only trustworthy with explicit overflow handling (the SSW
// lesson): every narrowing conversion and every addition that could wrap must
// either be proven in range or checked at the site. These helpers make the
// checked form as terse as the unchecked one, so there is no excuse to write
// a naked static_cast in score arithmetic. All of them assert via
// CUDALIGN_ASSERT (policy-configurable, see contracts.hpp).
#pragma once

#include <limits>
#include <type_traits>
#include <utility>

#include "check/contracts.hpp"

namespace cudalign::check {

/// Integral-to-integral cast that asserts the value is representable in the
/// destination type. Use at every narrowing seam (Index -> int, Score ->
/// int16_t lane, size_t -> Index, ...).
template <typename To, typename From>
[[nodiscard]] constexpr To checked_cast(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast is for integral conversions");
  CUDALIGN_ASSERT(std::in_range<To>(value), "checked_cast out of range: value ", +value,
                  " does not fit [", +std::numeric_limits<To>::min(), ", ",
                  +std::numeric_limits<To>::max(), "]");
  return static_cast<To>(value);
}

/// a + b, asserting the exact mathematical result fits T.
template <typename T>
[[nodiscard]] constexpr T checked_add(T a, T b) {
  static_assert(std::is_integral_v<T>, "checked_add is for integral arithmetic");
  T out{};
  const bool overflow = __builtin_add_overflow(a, b, &out);
  CUDALIGN_ASSERT(!overflow, "checked_add overflow: ", +a, " + ", +b);
  return out;
}

/// a - b, asserting the exact mathematical result fits T.
template <typename T>
[[nodiscard]] constexpr T checked_sub(T a, T b) {
  static_assert(std::is_integral_v<T>, "checked_sub is for integral arithmetic");
  T out{};
  const bool overflow = __builtin_sub_overflow(a, b, &out);
  CUDALIGN_ASSERT(!overflow, "checked_sub overflow: ", +a, " - ", +b);
  return out;
}

/// a * b, asserting the exact mathematical result fits T.
template <typename T>
[[nodiscard]] constexpr T checked_mul(T a, T b) {
  static_assert(std::is_integral_v<T>, "checked_mul is for integral arithmetic");
  T out{};
  const bool overflow = __builtin_mul_overflow(a, b, &out);
  CUDALIGN_ASSERT(!overflow, "checked_mul overflow: ", +a, " * ", +b);
  return out;
}

}  // namespace cudalign::check
