// Bus access auditor: a happens-before checker for the wavefront bus
// protocol (the race detector the GPU grid model implies).
//
// The CUDAlign grid guarantees correctness through a strict hand-off
// discipline on the two buses (engine/executor.hpp, paper §IV):
//
//   * horizontal bus slot j (a column vertex) is owned by one column chunk b;
//     it is written exactly once per strip pass — by tile (s, b), holding row
//     r1 — and read exactly once, by the successor tile (s+1, b), strictly
//     later in external-diagonal order;
//   * vertical bus boundary k is written by tile (s, k-1) (or seeded by the
//     executor for k = 0) and read by tile (s, k) within the same strip, one
//     external diagonal later;
//   * no tile may read a slot before its writer's diagonal has completed
//     (read-before-write across external diagonals), and no tile may
//     overwrite a slot whose previous value has not been consumed.
//
// The auditor is an opt-in shadow recorder: the executor reports every bus
// segment read/write with (strip, block, external diagonal, thread)
// coordinates, the auditor replays them against per-slot shadow state and
// records violations with BOTH endpoints (the offending access and the access
// it conflicts with), like a race detector report. The vertical shadow is
// plane-rotated by strip exactly like the executor's bus (`vplanes` buffers,
// plane = strip % vplanes): tile (s + 1, b) legitimately writes boundary
// b + 1 on the very diagonal tile (s, b + 1) reads it, and only the plane
// split makes that hand-off race-free — a single-buffer shadow would report
// interleaving-dependent false hazards there (the same-diagonal hazard the
// paper's minimum size requirement addresses).
//
// Two ordering models (OrderModel, chosen per run):
//
//   * kDiagonalBarrier (lockstep): tile-to-tile hand-offs must additionally
//     cross an external-diagonal barrier — a read on its writer's own
//     diagonal is the same-diagonal hazard, reported even though the values
//     happen to be correct.
//   * kTileHappensBefore (dataflow): there is no barrier; the hand-off
//     contract is per-tile happens-before — each slot's writer must have
//     published before its unique reader consumes. The auditor's mutex
//     serializes events in real execution order, so a premature concurrent
//     read surfaces as read-before-write (or read-after-overwrite) with both
//     endpoints; the diagonal-barrier rule is deliberately not applied.
//
// Overhead is O(slots touched) per tile plus one mutex acquisition; it is a
// debug/verification tool (Engine*Audit tests, `cudalign --audit-bus`), not a
// production path. One auditor instance audits a sequence of engine runs
// (begin_run resets shadow state, violations accumulate); concurrent runs
// must not share an instance.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "check/annotations.hpp"

namespace cudalign::check {

/// Grid coordinate / slot index. Mirrors cudalign::Index (common/types.hpp)
/// without including it: check/ is the base layer of the module DAG and may
/// not reach up into common/ (see tools/cudalint/layering.manifest).
using Index = std::int64_t;

/// One side of a violation: who touched the slot, and where in the schedule.
struct BusEndpoint {
  Index strip = 0;
  Index block = 0;     ///< kSeedBlock for executor boundary seeding.
  Index diagonal = 0;  ///< External diagonal (kSeedBlock rows: seeding point).
  std::uint64_t thread_id = 0;  ///< Hashed std::thread::id of the accessor.

  static constexpr Index kSeedBlock = -1;
  /// Special-row hand-off to the flush pipeline (flush_handoff events).
  static constexpr Index kFlushBlock = -2;

  [[nodiscard]] std::string describe() const;
};

struct BusViolation {
  enum class Rule : std::uint8_t {
    kDoubleWrite,        ///< Slot written twice in the same strip pass.
    kReadBeforeWrite,    ///< Read with no matching write (or a stale pass).
    kReadAfterOverwrite, ///< Read of a slot its own pass already overwrote.
    kIllegalReader,      ///< Read by a block that does not own the hand-off.
    kIllegalWriter,      ///< Write by a block that does not own the slot.
    kSameDiagonalHazard, ///< Read on the writer's own external diagonal.
    kOverwriteBeforeRead,///< Write destroying a value never consumed.
    kFlushOutOfOrder,    ///< Special-row hand-off out of ascending strip order.
  };

  Rule rule = Rule::kDoubleWrite;
  bool horizontal = true;  ///< Which bus; vertical otherwise.
  Index slot = 0;          ///< hbus: column vertex j. vbus: boundary * 10^6 + row.
  BusEndpoint prior;       ///< The conflicting earlier access (writer, usually).
  BusEndpoint current;     ///< The access that exposed the violation.

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] const char* rule_name(BusViolation::Rule rule);

/// Which happens-before relation a run is audited against (header comment).
enum class OrderModel : std::uint8_t {
  kDiagonalBarrier,    ///< Lockstep: hand-offs must cross a diagonal barrier.
  kTileHappensBefore,  ///< Dataflow: per-tile publish-before-consume only.
};

class BusAuditor {
 public:
  explicit BusAuditor(std::size_t max_recorded = 32) : max_recorded_(max_recorded) {}

  /// Resets shadow state for a new engine run over an n-column problem with
  /// the given chunk boundaries (`cuts`, size blocks + 1). `vplanes` is the
  /// number of vertical-bus planes the executor rotates (2 for lockstep's
  /// parity double-buffer; window + 2 for dataflow). Violations and event
  /// counts accumulate across runs.
  void begin_run(Index n, Index strips, Index blocks, Index strip_rows,
                 std::vector<Index> cuts, OrderModel order = OrderModel::kDiagonalBarrier,
                 Index vplanes = 2);

  // --- executor seeding (caller thread, before tiles launch) ---------------

  /// Row-0 horizontal-bus fill: slots [0..n], conceptually strip -1.
  void seed_horizontal();
  /// Column-0 vertical-bus fill for `strip`, rows [0..rows]; happens on the
  /// caller thread at external diagonal == strip, before that diagonal runs.
  void seed_vertical(Index strip, Index rows);

  // --- tile events (worker threads) ----------------------------------------

  /// Tile (strip, block) on `diagonal` reads its row-r0 input: slots (c0..c1].
  void read_horizontal(Index strip, Index block, Index diagonal, Index c0, Index c1);
  /// Tile (strip, block) publishes its row-r1 output: slots (c0..c1].
  void write_horizontal(Index strip, Index block, Index diagonal, Index c0, Index c1);
  /// Tile (strip, block) reads vertical boundary `block`, rows [0..rows].
  void read_vertical(Index strip, Index block, Index diagonal, Index rows);
  /// Tile (strip, block) writes vertical boundary `block + 1`, rows [0..rows].
  void write_vertical(Index strip, Index block, Index diagonal, Index rows);

  // --- flush pipeline (driver thread) --------------------------------------

  /// Strip `strip` retires and hands its special row to the flush path —
  /// the synchronous put() or the async SRA writer's staging buffer
  /// (sra/async_writer.hpp). Validates the flush pipeline's contract:
  /// hand-offs arrive in strictly ascending strip order (the prefix property
  /// the checkpoint cursor's durable-ack advance relies on), and the
  /// assembled row is complete — no hbus slot still carries a pass older
  /// than this strip (row segments are captured per tile, so equal-or-newer
  /// overwrites by successor strips are legal). The staging copy happens on
  /// the hand-off thread before this returns; the SRA writer thread itself
  /// never touches the buses, so it legitimately appears in no other audit
  /// event.
  void flush_handoff(Index strip, Index diagonal);

  // --- results -------------------------------------------------------------

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::uint64_t violation_count() const;
  [[nodiscard]] std::uint64_t events_recorded() const;
  /// The first `max_recorded` violations, with both endpoints each.
  [[nodiscard]] std::vector<BusViolation> violations() const;
  /// Human-readable multi-line report ("bus audit: clean, N events" if ok).
  [[nodiscard]] std::string report() const;

 private:
  struct Shadow {
    bool written = false;
    bool seed = false;          ///< Last write was an executor seed.
    Index writer_strip = 0;
    BusEndpoint writer;
    bool read_since_write = false;
    BusEndpoint reader;         ///< Last reader (valid if read_since_write).
  };

  // The helpers below run only inside the public methods' critical sections;
  // CUDALIGN_REQUIRES documents (and cudalint enforces) that contract.
  void record(BusViolation::Rule rule, bool horizontal, Index slot,
              const BusEndpoint& prior, const BusEndpoint& current) CUDALIGN_REQUIRES(mutex_);
  void check_read(Shadow& cell, bool horizontal, Index slot, Index expected_writer_strip,
                  const BusEndpoint& reader) CUDALIGN_REQUIRES(mutex_);
  void check_write(Shadow& cell, bool horizontal, Index slot, const BusEndpoint& writer)
      CUDALIGN_REQUIRES(mutex_);
  /// Chunk owning hbus slot (or -2).
  [[nodiscard]] Index owner_of(Index slot) const CUDALIGN_REQUIRES(mutex_);
  /// Vertical shadow cell for the plane `strip` uses (writes and reads of a
  /// strip both target its own plane, mirroring the executor's buffers).
  [[nodiscard]] Shadow& vcell(Index strip, Index boundary, Index row) CUDALIGN_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::size_t max_recorded_;  ///< Immutable after construction.
  Index n_ CUDALIGN_GUARDED_BY(mutex_) = 0;
  Index strips_ CUDALIGN_GUARDED_BY(mutex_) = 0;
  Index blocks_ CUDALIGN_GUARDED_BY(mutex_) = 0;
  Index strip_rows_ CUDALIGN_GUARDED_BY(mutex_) = 0;
  OrderModel order_ CUDALIGN_GUARDED_BY(mutex_) = OrderModel::kDiagonalBarrier;
  Index vplanes_ CUDALIGN_GUARDED_BY(mutex_) = 2;
  std::vector<Index> cuts_ CUDALIGN_GUARDED_BY(mutex_);
  /// Per hbus slot [0..n].
  std::vector<Shadow> hshadow_ CUDALIGN_GUARDED_BY(mutex_);
  /// vplanes x (blocks + 1) x (strip_rows + 1): plane-major.
  std::vector<Shadow> vshadow_ CUDALIGN_GUARDED_BY(mutex_);
  /// Last flush_handoff, for the ascending-order rule (strip -1 = none yet).
  BusEndpoint last_flush_ CUDALIGN_GUARDED_BY(mutex_){-1, BusEndpoint::kFlushBlock, -1, 0};
  std::vector<BusViolation> violations_ CUDALIGN_GUARDED_BY(mutex_);
  std::uint64_t violation_count_ CUDALIGN_GUARDED_BY(mutex_) = 0;
  std::uint64_t events_ CUDALIGN_GUARDED_BY(mutex_) = 0;
};

}  // namespace cudalign::check
