#include "check/bus_audit.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "check/contracts.hpp"

namespace cudalign::check {

namespace {

/// Encodes a vertical-bus cell as one slot id for reporting: boundary k, row
/// offset t -> k * kVSlotStride + t (decoded by BusViolation::describe).
constexpr Index kVSlotStride = 1'000'000;

std::uint64_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

const char* rule_name(BusViolation::Rule rule) {
  switch (rule) {
    case BusViolation::Rule::kDoubleWrite: return "double-write";
    case BusViolation::Rule::kReadBeforeWrite: return "read-before-write";
    case BusViolation::Rule::kReadAfterOverwrite: return "read-after-overwrite";
    case BusViolation::Rule::kIllegalReader: return "illegal-reader";
    case BusViolation::Rule::kIllegalWriter: return "illegal-writer";
    case BusViolation::Rule::kSameDiagonalHazard: return "same-diagonal-hazard";
    case BusViolation::Rule::kOverwriteBeforeRead: return "overwrite-before-read";
    case BusViolation::Rule::kFlushOutOfOrder: return "flush-out-of-order";
  }
  return "unknown";
}

std::string BusEndpoint::describe() const {
  std::ostringstream os;
  if (block == kSeedBlock) {
    os << "executor seed (strip " << strip << ") at diagonal " << diagonal;
  } else if (block == kFlushBlock) {
    os << "flush hand-off (strip " << strip << ") at diagonal " << diagonal;
  } else {
    os << "tile (strip " << strip << ", block " << block << ") on diagonal " << diagonal;
  }
  os << " [thread " << std::hex << thread_id << std::dec << "]";
  return os.str();
}

std::string BusViolation::describe() const {
  std::ostringstream os;
  os << rule_name(rule) << " on " << (horizontal ? "horizontal" : "vertical") << " bus ";
  if (horizontal) {
    os << "slot " << slot;
  } else {
    os << "boundary " << slot / kVSlotStride << " row " << slot % kVSlotStride;
  }
  os << ": " << current.describe() << " conflicts with " << prior.describe();
  return os.str();
}

void BusAuditor::begin_run(Index n, Index strips, Index blocks, Index strip_rows,
                           std::vector<Index> cuts, OrderModel order, Index vplanes) {
  CUDALIGN_CHECK(static_cast<Index>(cuts.size()) == blocks + 1,
                 "bus audit: cuts must have blocks + 1 entries");
  CUDALIGN_CHECK(strip_rows < kVSlotStride, "bus audit: strip height exceeds the slot encoding");
  CUDALIGN_CHECK(vplanes >= 2, "bus audit: a run rotates at least two vertical-bus planes");
  std::lock_guard lock(mutex_);
  n_ = n;
  strips_ = strips;
  blocks_ = blocks;
  strip_rows_ = strip_rows;
  order_ = order;
  vplanes_ = vplanes;
  cuts_ = std::move(cuts);
  last_flush_ = BusEndpoint{-1, BusEndpoint::kFlushBlock, -1, 0};
  hshadow_.assign(static_cast<std::size_t>(n) + 1, Shadow{});
  vshadow_.assign(static_cast<std::size_t>(vplanes) * static_cast<std::size_t>(blocks + 1) *
                      static_cast<std::size_t>(strip_rows + 1),
                  Shadow{});
}

Index BusAuditor::owner_of(Index slot) const {
  // Chunk b owns slots (cuts[b] .. cuts[b+1]]; slot 0 has no owner (seeded
  // only, never read — the tile corner arrives via the vertical bus).
  if (slot <= 0 || slot > n_) return -2;
  const auto it = std::lower_bound(cuts_.begin(), cuts_.end(), slot);
  return static_cast<Index>(it - cuts_.begin()) - 1;
}

BusAuditor::Shadow& BusAuditor::vcell(Index strip, Index boundary, Index row) {
  const std::size_t plane = static_cast<std::size_t>(strip % vplanes_) *
                            static_cast<std::size_t>(blocks_ + 1) *
                            static_cast<std::size_t>(strip_rows_ + 1);
  return vshadow_[plane +
                  static_cast<std::size_t>(boundary) * static_cast<std::size_t>(strip_rows_ + 1) +
                  static_cast<std::size_t>(row)];
}

void BusAuditor::record(BusViolation::Rule rule, bool horizontal, Index slot,
                        const BusEndpoint& prior, const BusEndpoint& current) {
  ++violation_count_;
  if (violations_.size() < max_recorded_) {
    violations_.push_back(BusViolation{rule, horizontal, slot, prior, current});
  }
}

void BusAuditor::check_read(Shadow& cell, bool horizontal, Index slot,
                            Index expected_writer_strip, const BusEndpoint& reader) {
  ++events_;
  if (!cell.written || cell.writer_strip < expected_writer_strip) {
    record(BusViolation::Rule::kReadBeforeWrite, horizontal, slot, cell.writer, reader);
  } else if (order_ == OrderModel::kDiagonalBarrier &&
             (cell.seed ? cell.writer.diagonal > reader.diagonal
                        : cell.writer.diagonal >= reader.diagonal)) {
    // Lockstep only: tile-to-tile hand-offs must cross an external-diagonal
    // barrier; executor seeds happen on the caller thread before the diagonal
    // launches, so equality is legal for them. Under kTileHappensBefore the
    // writer merely has to have published first — the mutex-serialized event
    // stream IS that order, so a premature read already surfaced above as
    // read-before-write.
    record(BusViolation::Rule::kSameDiagonalHazard, horizontal, slot, cell.writer, reader);
  }
  cell.read_since_write = true;
  cell.reader = reader;
}

void BusAuditor::check_write(Shadow& cell, bool horizontal, Index slot,
                             const BusEndpoint& writer) {
  ++events_;
  if (cell.written && cell.writer_strip == writer.strip && cell.seed == false &&
      writer.block != BusEndpoint::kSeedBlock) {
    record(BusViolation::Rule::kDoubleWrite, horizontal, slot, cell.writer, writer);
  } else if (cell.written && !cell.read_since_write) {
    record(BusViolation::Rule::kOverwriteBeforeRead, horizontal, slot, cell.writer, writer);
  }
  cell.written = true;
  cell.seed = writer.block == BusEndpoint::kSeedBlock;
  cell.writer_strip = writer.strip;
  cell.writer = writer;
  cell.read_since_write = false;
}

void BusAuditor::seed_horizontal() {
  std::lock_guard lock(mutex_);
  const BusEndpoint seed{-1, BusEndpoint::kSeedBlock, -1, this_thread_hash()};
  for (Index j = 0; j <= n_; ++j) {
    Shadow& cell = hshadow_[static_cast<std::size_t>(j)];
    ++events_;
    cell = Shadow{};
    cell.written = true;
    cell.seed = true;
    cell.writer_strip = -1;
    cell.writer = seed;
    // Row-0 values under the last chunk's columns of the final strips are
    // legitimately never read on narrow problems; seeds are exempt from the
    // overwrite-before-read rule by construction (fresh shadow).
  }
}

void BusAuditor::seed_vertical(Index strip, Index rows) {
  std::lock_guard lock(mutex_);
  const BusEndpoint seed{strip, BusEndpoint::kSeedBlock, strip, this_thread_hash()};
  for (Index t = 0; t <= rows; ++t) {
    Shadow& cell = vcell(strip, 0, t);
    ++events_;
    // Boundary 0 of this plane was last seeded for strip - vplanes and
    // consumed by tile (strip - vplanes, 0). An unconsumed value is a lost
    // hand-off, the same defect overwrite-before-read reports for tiles.
    if (cell.written && !cell.read_since_write) {
      record(BusViolation::Rule::kOverwriteBeforeRead, false, t, cell.writer, seed);
    }
    cell.written = true;
    cell.seed = true;
    cell.writer_strip = strip;
    cell.writer = seed;
    cell.read_since_write = false;
  }
}

void BusAuditor::read_horizontal(Index strip, Index block, Index diagonal, Index c0, Index c1) {
  std::lock_guard lock(mutex_);
  const BusEndpoint reader{strip, block, diagonal, this_thread_hash()};
  for (Index j = c0 + 1; j <= c1; ++j) {
    Shadow& cell = hshadow_[static_cast<std::size_t>(j)];
    if (owner_of(j) != block) {
      ++events_;
      record(BusViolation::Rule::kIllegalReader, true, j, cell.writer, reader);
      continue;
    }
    // The row-r0 input must be the row published by the previous pass.
    check_read(cell, true, j, strip - 1, reader);
  }
}

void BusAuditor::write_horizontal(Index strip, Index block, Index diagonal, Index c0, Index c1) {
  std::lock_guard lock(mutex_);
  const BusEndpoint writer{strip, block, diagonal, this_thread_hash()};
  for (Index j = c0 + 1; j <= c1; ++j) {
    Shadow& cell = hshadow_[static_cast<std::size_t>(j)];
    if (owner_of(j) != block) {
      ++events_;
      record(BusViolation::Rule::kIllegalWriter, true, j, cell.writer, writer);
      continue;
    }
    check_write(cell, true, j, writer);
  }
}

void BusAuditor::read_vertical(Index strip, Index block, Index diagonal, Index rows) {
  std::lock_guard lock(mutex_);
  const BusEndpoint reader{strip, block, diagonal, this_thread_hash()};
  for (Index t = 0; t <= rows; ++t) {
    // Boundary `block` is the only one tile (strip, block) may read; the
    // hand-off is within the same strip pass (and thus the same parity plane).
    check_read(vcell(strip, block, t), false, block * kVSlotStride + t, strip, reader);
  }
}

void BusAuditor::write_vertical(Index strip, Index block, Index diagonal, Index rows) {
  std::lock_guard lock(mutex_);
  const BusEndpoint writer{strip, block, diagonal, this_thread_hash()};
  for (Index t = 0; t <= rows; ++t) {
    Shadow& cell = vcell(strip, block + 1, t);
    // The final boundary (blocks_) has no reader; skip the consumed-value
    // rule there, keep the double-write rule.
    if (cell.written && cell.writer_strip == strip) {
      ++events_;
      record(BusViolation::Rule::kDoubleWrite, false, (block + 1) * kVSlotStride + t,
             cell.writer, writer);
      continue;
    }
    if (cell.written && !cell.read_since_write && block + 1 != blocks_) {
      ++events_;
      record(BusViolation::Rule::kOverwriteBeforeRead, false, (block + 1) * kVSlotStride + t,
             cell.writer, writer);
      continue;
    }
    ++events_;
    cell.written = true;
    cell.seed = false;
    cell.writer_strip = strip;
    cell.writer = writer;
    cell.read_since_write = false;
  }
}

void BusAuditor::flush_handoff(Index strip, Index diagonal) {
  std::lock_guard lock(mutex_);
  const BusEndpoint handoff{strip, BusEndpoint::kFlushBlock, diagonal, this_thread_hash()};
  ++events_;
  // The prefix property: special rows reach the flush pipeline (and thus the
  // SRA store, the durable-ack queue and the checkpoint cursor) in strictly
  // ascending strip order under both executors.
  if (strip <= last_flush_.strip) {
    record(BusViolation::Rule::kFlushOutOfOrder, true, 0, last_flush_, handoff);
  }
  last_flush_ = handoff;
  // Row completeness: by retirement every chunk of this strip has published
  // its hbus segment, so no slot may still carry a pass *older* than this
  // strip. Equal-or-newer is legal under both models — row segments are
  // captured per tile, and successor strips may have overwritten early
  // chunks by the time the strip retires.
  for (Index j = 1; j <= n_; ++j) {
    Shadow& cell = hshadow_[static_cast<std::size_t>(j)];
    if (!cell.written || cell.writer_strip < strip) {
      ++events_;
      record(BusViolation::Rule::kReadBeforeWrite, true, j, cell.writer, handoff);
    }
  }
}

bool BusAuditor::ok() const {
  std::lock_guard lock(mutex_);
  return violation_count_ == 0;
}

std::uint64_t BusAuditor::violation_count() const {
  std::lock_guard lock(mutex_);
  return violation_count_;
}

std::uint64_t BusAuditor::events_recorded() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::vector<BusViolation> BusAuditor::violations() const {
  std::lock_guard lock(mutex_);
  return violations_;
}

std::string BusAuditor::report() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  if (violation_count_ == 0) {
    os << "bus audit: clean (" << events_ << " events)";
    return os.str();
  }
  os << "bus audit: " << violation_count_ << " violation(s) in " << events_ << " events";
  for (const BusViolation& v : violations_) os << "\n  " << v.describe();
  if (violation_count_ > violations_.size()) {
    os << "\n  ... " << violation_count_ - violations_.size() << " more";
  }
  return os.str();
}

}  // namespace cudalign::check
