// Contract macros: the one place every invariant in cudalign is spelled out.
//
// Three tiers, by who is at fault and what it costs to verify:
//
//   CUDALIGN_CHECK(cond, msg...)   user-facing precondition (bad input, bad
//                                  configuration). Always on, always throws
//                                  cudalign::Error — callers can catch it.
//   CUDALIGN_ASSERT(cond, msg...)  internal invariant; a failure is a library
//                                  bug. Always on (alignment-correctness bugs
//                                  are silent-data-corruption bugs) but the
//                                  reaction is policy-configurable: throw
//                                  (default), abort (debugging: die at the
//                                  scene with the stack intact), or log
//                                  (soak runs: count and continue).
//   CUDALIGN_DCHECK(cond, msg...)  internal invariant too expensive for
//                                  release hot loops (per-cell, per-lane
//                                  checks). Compiled out when NDEBUG is
//                                  defined unless CUDALIGN_FORCE_DCHECKS
//                                  overrides; otherwise identical to
//                                  CUDALIGN_ASSERT.
//
// Messages are optional variadic stream parts, formatted lazily — only on
// failure: CUDALIGN_ASSERT(i < n, "row ", i, " of ", n).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cudalign {

/// The library's one exception type: user-facing failures (bad input, I/O,
/// configuration) and — under the default policy — broken internal contracts.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace check {

/// Reaction to a failed CUDALIGN_ASSERT / CUDALIGN_DCHECK. CUDALIGN_CHECK is
/// exempt: precondition violations always throw so callers can report them.
enum class FailurePolicy : std::uint8_t {
  kThrow,  ///< Throw cudalign::Error (default; what tests expect).
  kAbort,  ///< Print to stderr and std::abort (debug at the scene).
  kLog,    ///< Print to stderr, count, continue (soak / triage runs).
};

[[nodiscard]] FailurePolicy failure_policy() noexcept;
void set_failure_policy(FailurePolicy policy) noexcept;

/// Failures swallowed under FailurePolicy::kLog since the last reset.
[[nodiscard]] std::uint64_t logged_failures() noexcept;
void reset_logged_failures() noexcept;

/// RAII policy override for a scope (tests, soak harnesses).
class ScopedFailurePolicy {
 public:
  explicit ScopedFailurePolicy(FailurePolicy policy)
      : previous_(failure_policy()) {
    set_failure_policy(policy);
  }
  ScopedFailurePolicy(const ScopedFailurePolicy&) = delete;
  ScopedFailurePolicy& operator=(const ScopedFailurePolicy&) = delete;
  ~ScopedFailurePolicy() { set_failure_policy(previous_); }

 private:
  FailurePolicy previous_;
};

namespace detail {

/// Lazy stream formatting of the optional message parts.
template <typename... Parts>
[[nodiscard]] std::string format_message(Parts&&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
}

/// CUDALIGN_CHECK failure: unconditionally throws cudalign::Error.
[[noreturn]] void fail_check(const char* cond, const char* file, int line,
                             const std::string& msg);

/// CUDALIGN_ASSERT / CUDALIGN_DCHECK failure: honors the failure policy
/// (returns only under FailurePolicy::kLog).
void fail_assert(const char* kind, const char* cond, const char* file, int line,
                 const std::string& msg);

}  // namespace detail
}  // namespace check
}  // namespace cudalign

/// Validates user-facing preconditions; throws cudalign::Error on failure.
#define CUDALIGN_CHECK(cond, ...)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::cudalign::check::detail::fail_check(                               \
          #cond, __FILE__, __LINE__,                                       \
          ::cudalign::check::detail::format_message(__VA_ARGS__));         \
    }                                                                      \
  } while (0)

/// Internal invariant; a failure indicates a library bug. Reaction follows
/// cudalign::check::failure_policy().
#define CUDALIGN_ASSERT(cond, ...)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::cudalign::check::detail::fail_assert(                              \
          "assert", #cond, __FILE__, __LINE__,                             \
          ::cudalign::check::detail::format_message(__VA_ARGS__));         \
    }                                                                      \
  } while (0)

/// Hot-loop invariant: active in debug builds (or when CUDALIGN_FORCE_DCHECKS
/// is defined), compiled to nothing in release — the condition stays
/// type-checked but is never evaluated.
#if !defined(NDEBUG) || defined(CUDALIGN_FORCE_DCHECKS)
#define CUDALIGN_DCHECK(cond, ...)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::cudalign::check::detail::fail_assert(                              \
          "dcheck", #cond, __FILE__, __LINE__,                             \
          ::cudalign::check::detail::format_message(__VA_ARGS__));         \
    }                                                                      \
  } while (0)
#else
#define CUDALIGN_DCHECK(cond, ...) \
  do {                             \
    if (false && (cond)) {         \
    }                              \
  } while (0)
#endif
