#include "check/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cudalign::check {

namespace {

std::atomic<FailurePolicy> g_policy{FailurePolicy::kThrow};
std::atomic<std::uint64_t> g_logged_failures{0};

std::string render(const char* kind, const char* cond, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

}  // namespace

// order: relaxed — the policy is a standalone flag; no data is published under it.
FailurePolicy failure_policy() noexcept { return g_policy.load(std::memory_order_relaxed); }

void set_failure_policy(FailurePolicy policy) noexcept {
  // order: relaxed — same standalone flag; callers configure before spawning work.
  g_policy.store(policy, std::memory_order_relaxed);
}

std::uint64_t logged_failures() noexcept {
  // order: relaxed — a monotonic count read after the run joins; nothing rides on it.
  return g_logged_failures.load(std::memory_order_relaxed);
}

void reset_logged_failures() noexcept {
  // order: relaxed — reset happens between runs, with no concurrent writers.
  g_logged_failures.store(0, std::memory_order_relaxed);
}

namespace detail {

void fail_check(const char* cond, const char* file, int line, const std::string& msg) {
  throw Error(render("check", cond, file, line, msg));
}

void fail_assert(const char* kind, const char* cond, const char* file, int line,
                 const std::string& msg) {
  const std::string what = render(kind, cond, file, line, msg);
  switch (failure_policy()) {
    case FailurePolicy::kThrow:
      throw Error(what);
    case FailurePolicy::kAbort:
      std::fprintf(stderr, "cudalign: %s\n", what.c_str());
      std::abort();
    case FailurePolicy::kLog:
      std::fprintf(stderr, "cudalign: %s\n", what.c_str());
      // order: relaxed — a pure event counter; the log line above carries the story.
      g_logged_failures.fetch_add(1, std::memory_order_relaxed);
      return;
  }
  std::abort();  // Unreachable: every policy is handled above.
}

}  // namespace detail
}  // namespace cudalign::check
