// Thread-safety annotations — the static half of the check subsystem's
// happens-before discipline (the bus auditor is the dynamic half).
//
// The macros expand to clang's thread-safety-analysis attributes when the
// compiler has them (so `-Wthread-safety` sees the same contracts) and to
// nothing otherwise. Either way, cudalint's declaration-aware `guarded-by` /
// `raw-lock` rules read them on every build, so the contracts are enforced
// even under gcc.
//
// Conventions:
//   CUDALIGN_GUARDED_BY(m)  on a field: reads and writes require holding `m`.
//   CUDALIGN_REQUIRES(m)    on a function: the caller already holds `m`
//                           (private helpers called under the lock).
//   CUDALIGN_ACQUIRE(m) / CUDALIGN_RELEASE(m)
//                           on a function that IS the lock discipline (an
//                           RAII wrapper's own methods); exempts it from the
//                           raw-lock rule.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CUDALIGN_TSA_ATTR_(x) __attribute__((x))
#endif
#endif
#ifndef CUDALIGN_TSA_ATTR_
#define CUDALIGN_TSA_ATTR_(x)
#endif

#define CUDALIGN_GUARDED_BY(m) CUDALIGN_TSA_ATTR_(guarded_by(m))
#define CUDALIGN_REQUIRES(...) CUDALIGN_TSA_ATTR_(requires_capability(__VA_ARGS__))
#define CUDALIGN_ACQUIRE(...) CUDALIGN_TSA_ATTR_(acquire_capability(__VA_ARGS__))
#define CUDALIGN_RELEASE(...) CUDALIGN_TSA_ATTR_(release_capability(__VA_ARGS__))
