// Asynchronous special-row flush pipeline (ROADMAP "Stage-1 I/O overlap",
// DESIGN.md section of the same name): a dedicated writer thread drains a
// bounded queue of staged row buffers so the executor's strip retirement
// hands a row off and returns to compute immediately, instead of paying the
// CRC'd write (+ fsync + manifest rewrite in durable mode) on the critical
// path. CUDAlign 2.1's lineage overlaps disk flushes with GPU compute for
// exactly this reason (paper §IV-B makes special-row saves the linear-space
// design's recurring cost).
//
// Durability ordering is preserved, not relaxed: each staged row's
// durable-ack callback (the pipeline's checkpoint-manifest save) runs on the
// writer thread strictly after SpecialRowsArea::put() has returned for that
// row — i.e. after the CRC'd write completes (and, in durable mode, after
// the write-fsync-rename-fsync protocol). Rows are written in submission
// (= ascending flush-row) order by the single writer, so the on-disk store
// and manifest sequence are byte-identical to the synchronous path, and
// kill-and-resume semantics are unchanged: a crash between a row's put() and
// its manifest save leaves an orphan row beyond the checkpoint cursor, which
// the resume reconciliation already sweeps.
//
// Ownership protocol (phase-based, not lock-based): between construction and
// drain() the writer thread is the sole owner of the SpecialRowsArea and of
// everything the ack callbacks touch (checkpoint state + manifest). The
// submitting thread only copies cells into staged buffers and moves them
// through the queue; it must not read area statistics until drain() has
// returned. drain() establishes the happens-before edge back to the caller
// (queue mutex + condition variable), after which single-threaded access
// resumes.
//
// Backpressure: the queue holds at most `queue_capacity` staged rows
// (triple-buffered by default — one in flight, two staged). A submit against
// a full queue blocks until the writer retires a row; that wait is the
// compute-side stall the stats expose. Retired buffers are recycled through
// a free list, so steady state performs no per-row allocation.
//
// Failure: a writer-thread exception (disk full, fault injection) poisons
// the queue — no later row is written past a failed one, preserving the
// cursor's prefix property — and drain() rethrows it on the submitting
// thread. Submissions after a failure are silently dropped (the run's result
// is discarded when drain() throws).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "sra/sra.hpp"

namespace cudalign::sra {

/// Writer-pipeline accounting for StageStats / the run report (obs/report).
struct AsyncWriterStats {
  Index rows_submitted = 0;  ///< Rows handed to the writer (staged + committed).
  Index rows_acked = 0;      ///< Rows durably written and acknowledged.
  std::size_t queue_peak = 0;        ///< High-water staged rows in the queue.
  double submit_wait_seconds = 0;    ///< Compute-side backpressure stalls.
  double writer_busy_seconds = 0;    ///< Writer-thread time in put() + ack.
};

class AsyncSraWriter {
 public:
  /// One row in flight plus two staged absorbs flush bursts without
  /// unbounding memory: rows are n+1 BusCells each, the same order of
  /// magnitude as the engine's bus planes.
  static constexpr std::size_t kDefaultQueueCapacity = 3;

  explicit AsyncSraWriter(SpecialRowsArea& area,
                          std::size_t queue_capacity = kDefaultQueueCapacity);
  AsyncSraWriter(const AsyncSraWriter&) = delete;
  AsyncSraWriter& operator=(const AsyncSraWriter&) = delete;
  /// Stops the writer after flushing whatever is queued (acks included), then
  /// joins. Unlike drain(), a captured failure is swallowed — destructors run
  /// during unwinding; call drain() first to observe errors.
  ~AsyncSraWriter();

  /// Phase 1 of a hand-off: copy `cells` into a staged buffer (recycled from
  /// the free list when possible). The copy happens on the calling thread
  /// because the span's storage (the executor's bus planes) may be reused the
  /// moment the flush hook returns. Must be followed by commit().
  void stage(const RowKey& key, std::span<const engine::BusCell> cells);

  /// Phase 2: enqueue the staged row for writing, blocking while the queue
  /// is full (backpressure). `on_durable` — may be empty — runs on the
  /// writer thread after this row's put() has returned.
  void commit(std::function<void()> on_durable);

  /// stage() + commit() in one call (single-phase callers and tests).
  void submit(const RowKey& key, std::span<const engine::BusCell> cells,
              std::function<void()> on_durable = {});

  /// Blocks until every committed row is durable and acknowledged (or the
  /// writer failed), then rethrows any writer-thread exception. Establishes
  /// the ownership hand-back edge: after drain() returns the caller may
  /// again touch the SpecialRowsArea and the ack callbacks' state.
  void drain();

  [[nodiscard]] AsyncWriterStats stats() const;

 private:
  struct StagedRow {
    RowKey key;
    std::vector<engine::BusCell> cells;
    std::function<void()> on_durable;
  };

  void writer_loop();

  SpecialRowsArea& area_;
  const std::size_t capacity_;

  /// Compute-thread-only scratch between stage() and commit(); never touched
  /// by the writer thread, so deliberately outside the mutex.
  std::optional<StagedRow> staged_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Signals the writer: row queued / stop.
  std::condition_variable space_cv_;  ///< Signals submitters: slot free / poisoned.
  std::condition_variable idle_cv_;   ///< Signals drain(): queue empty + writer idle.
  std::deque<StagedRow> queue_ CUDALIGN_GUARDED_BY(mutex_);
  std::vector<std::vector<engine::BusCell>> free_buffers_ CUDALIGN_GUARDED_BY(mutex_);
  bool stop_ CUDALIGN_GUARDED_BY(mutex_) = false;
  bool writing_ CUDALIGN_GUARDED_BY(mutex_) = false;
  std::exception_ptr failure_ CUDALIGN_GUARDED_BY(mutex_);
  AsyncWriterStats stats_ CUDALIGN_GUARDED_BY(mutex_);

  std::thread writer_;  ///< Last member: starts in the constructor.
};

}  // namespace cudalign::sra
