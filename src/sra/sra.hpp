// Special Rows Area (paper §IV-B): disk-backed storage for special rows and
// special columns under a byte budget.
//
// Each special row persists two 4-byte values per cell — H and F (rows are
// crossed by diagonal/vertical edges); special columns persist H and E. The
// *flush interval* is derived from the budget exactly as in the paper:
// at least ceil(8*m*n / (alpha*T*|SRA|)) blocks between flushes, i.e. the
// budget is never exceeded no matter the matrix size.
//
// On-disk format (version 2, DESIGN.md "Checkpoint & resume"): every row
// file is self-describing — magic, format version, its RowKey, cell count
// and a CRC-32 of the payload — and the store manifest records the same CRC,
// so truncation and bit rot are detected on load instead of silently
// corrupting a resumed alignment. Version-1 stores (no CRCs) are refused
// with a format-version diagnostic, never reinterpreted.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "engine/kernels.hpp"

namespace cudalign::sra {

/// Metadata of one persisted special row (or column — the axis is the
/// caller's convention; the store is symmetric).
struct RowKey {
  Index position = 0;   ///< Row (or column) vertex index in the full matrix.
  Index begin = 0;      ///< First cell index covered (inclusive vertex).
  Index end = 0;        ///< Last vertex covered (inclusive).
  /// Namespace tag: stages use it to segregate stage-1 rows from stage-2
  /// columns and to associate columns with their owning partition.
  std::int64_t group = 0;
};

/// The SRA on-disk format version this build reads and writes. Bumped when
/// the row-file or manifest layout changes; a store written by a different
/// version is refused on open (checkpoints never cross format versions).
inline constexpr std::uint16_t kSraFormatVersion = 2;

/// How hard the store tries to survive a crash mid-write.
enum class Durability : std::uint8_t {
  /// Plain buffered writes (manifest still replaced via rename). The mode
  /// for self-cleaning temp-dir runs: fast, but a crash may tear files.
  kFast,
  /// Every row file and manifest update goes through the full
  /// write-fsync-rename-fsync protocol (common/io_util.hpp): after put()
  /// returns, the row survives SIGKILL or power loss. The mode checkpointed
  /// pipelines use.
  kDurable,
};

/// Computes the paper's flush interval: the number of strips between special
/// rows such that at most `budget` bytes are ever stored. A full special row
/// costs 8*(n+1) bytes; there are m/strip_rows strip boundaries.
[[nodiscard]] Index flush_interval_for_budget(Index m, Index n, Index strip_rows,
                                              std::int64_t budget_bytes);

/// Disk-backed store. Files live under a caller-provided directory; the store
/// enforces its byte budget on writes (a write that would exceed the budget
/// throws — callers size their flush interval so this cannot happen, exactly
/// the paper's invariant).
///
/// The index is persisted in a manifest file alongside the rows, so a store
/// reopened on the same directory recovers its contents — chromosome-scale
/// Stage-1 runs take many hours (18.5 h in the paper) and must not lose
/// their special rows to a crash or restart. Opening also sweeps stale
/// `*.tmp` files (torn durable writes from a previous crash) and validates
/// that every live row file exists with its full recorded size.
class SpecialRowsArea {
 public:
  SpecialRowsArea(std::filesystem::path directory, std::int64_t budget_bytes,
                  Durability durability = Durability::kFast);

  /// Persists a row; returns its storage index.
  std::size_t put(const RowKey& key, std::span<const engine::BusCell> cells);

  /// Loads a row by storage index, verifying the file header against the
  /// manifest and the payload against its CRC-32. Throws on any mismatch.
  [[nodiscard]] std::vector<engine::BusCell> get(std::size_t index) const;
  [[nodiscard]] const RowKey& key(std::size_t index) const;
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

  /// All indices in `group`, sorted by position ascending.
  [[nodiscard]] std::vector<std::size_t> group_members(std::int64_t group) const;

  /// Deletes one row, reclaiming budget. Resume uses this to drop rows that
  /// were flushed after the last checkpointed one (they are recomputed, and
  /// keeping them would duplicate positions within the group).
  void drop_row(std::size_t index);

  /// Deletes all rows in `group`, reclaiming budget (stages drop their
  /// intermediate data once consumed, like the paper's constant-|SRA| reuse).
  void drop_group(std::int64_t group);

  /// Deletes everything (a fresh pipeline run on a reused working directory
  /// must not inherit a previous run's rows).
  void drop_all();

  [[nodiscard]] std::int64_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::int64_t used_bytes() const noexcept { return used_; }
  /// High-water mark of bytes simultaneously stored.
  [[nodiscard]] std::int64_t peak_bytes() const noexcept { return peak_; }
  [[nodiscard]] std::int64_t total_bytes_written() const noexcept { return written_; }
  /// Cumulative read-back traffic (stage 2/3 matching); counts get() calls
  /// and the bytes they loaded. Observability only — not persisted in the
  /// manifest, so a reopened store restarts them at zero.
  [[nodiscard]] std::int64_t total_bytes_read() const noexcept { return read_; }
  [[nodiscard]] Index rows_read() const noexcept { return rows_read_; }

 private:
  [[nodiscard]] std::filesystem::path file_for(std::size_t index) const;
  void load_manifest();
  void save_manifest() const;
  void remove_row_file(std::size_t index);

  std::filesystem::path dir_;
  std::int64_t budget_;
  Durability durability_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t written_ = 0;
  /// Read-traffic tallies; mutable so the logically-const get() can count.
  mutable std::int64_t read_ = 0;
  mutable Index rows_read_ = 0;
  std::vector<RowKey> keys_;
  std::vector<bool> live_;
  std::vector<std::int64_t> sizes_;
  std::vector<std::uint32_t> crcs_;
};

}  // namespace cudalign::sra
