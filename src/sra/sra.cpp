#include "sra/sra.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"
#include "common/io_util.hpp"

namespace cudalign::sra {

Index flush_interval_for_budget(Index m, Index n, Index strip_rows, std::int64_t budget_bytes) {
  CUDALIGN_CHECK(m >= 0 && n >= 0 && strip_rows > 0, "invalid matrix geometry");
  const std::int64_t row_bytes = 8 * (n + 1);  // Two 4-byte values per cell (§IV-B).
  CUDALIGN_CHECK(budget_bytes >= row_bytes,
                 "SRA must be at least the size of one special row (paper §IV-B)");
  // ceil(8*m*n / (strip_rows * |SRA|)), clamped to >= 1: the paper's formula
  // with alpha*T = strip_rows.
  const std::int64_t strips = (m + strip_rows - 1) / strip_rows;
  const std::int64_t max_rows = budget_bytes / row_bytes;
  if (max_rows >= strips) return 1;
  return static_cast<Index>((strips + max_rows - 1) / max_rows);
}

namespace {
constexpr std::uint32_t kManifestMagic = 0x53524131;  // "SRA1"
}  // namespace

SpecialRowsArea::SpecialRowsArea(std::filesystem::path directory, std::int64_t budget_bytes)
    : dir_(std::move(directory)), budget_(budget_bytes) {
  CUDALIGN_CHECK(budget_ > 0, "SRA budget must be positive");
  std::filesystem::create_directories(dir_);
  if (std::filesystem::exists(dir_ / "manifest.bin")) load_manifest();
}

void SpecialRowsArea::save_manifest() const {
  // Write-then-rename keeps the manifest consistent under crashes.
  const auto tmp = dir_ / "manifest.tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CUDALIGN_CHECK(os.good(), "cannot write SRA manifest");
    write_pod(os, kManifestMagic);
    write_pod(os, static_cast<std::uint64_t>(keys_.size()));
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      write_pod(os, keys_[i]);
      write_pod(os, sizes_[i]);
      // Provably lossless: serializing a bool as a manifest byte, the source
      // domain is {0, 1}.
      write_pod(os, static_cast<std::uint8_t>(live_[i] ? 1 : 0));  // cudalint: allow(narrow-cast)
    }
    CUDALIGN_CHECK(os.good(), "error writing SRA manifest");
  }
  std::filesystem::rename(tmp, dir_ / "manifest.bin");
}

void SpecialRowsArea::load_manifest() {
  std::ifstream is(dir_ / "manifest.bin", std::ios::binary);
  CUDALIGN_CHECK(is.good(), "cannot open SRA manifest");
  CUDALIGN_CHECK(read_pod<std::uint32_t>(is) == kManifestMagic, "bad SRA manifest magic");
  const auto count = read_pod<std::uint64_t>(is);
  keys_.clear();
  sizes_.clear();
  live_.clear();
  used_ = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    keys_.push_back(read_pod<RowKey>(is));
    sizes_.push_back(read_pod<std::int64_t>(is));
    const bool live = read_pod<std::uint8_t>(is) != 0;
    live_.push_back(live);
    if (live) {
      CUDALIGN_CHECK(std::filesystem::exists(file_for(keys_.size() - 1)),
                     "SRA manifest references a missing row file");
      used_ += sizes_.back();
    }
  }
  CUDALIGN_CHECK(used_ <= budget_, "recovered SRA exceeds the configured budget");
  peak_ = used_;
  written_ = used_;
}

std::filesystem::path SpecialRowsArea::file_for(std::size_t index) const {
  return dir_ / ("sra-" + std::to_string(index) + ".bin");
}

std::size_t SpecialRowsArea::put(const RowKey& key, std::span<const engine::BusCell> cells) {
  CUDALIGN_CHECK(key.end - key.begin + 1 == static_cast<Index>(cells.size()),
                 "special row cell count does not match its key range");
  const auto bytes = static_cast<std::int64_t>(cells.size_bytes());
  CUDALIGN_CHECK(used_ + bytes <= budget_,
                 "SRA budget exceeded; flush interval was sized incorrectly");
  const std::size_t index = keys_.size();
  {
    std::ofstream os(file_for(index), std::ios::binary | std::ios::trunc);
    CUDALIGN_CHECK(os.good(), "cannot open SRA file for writing");
    write_span(os, cells);
  }
  keys_.push_back(key);
  live_.push_back(true);
  sizes_.push_back(bytes);
  used_ += bytes;
  written_ += bytes;
  peak_ = std::max(peak_, used_);
  save_manifest();
  return index;
}

std::vector<engine::BusCell> SpecialRowsArea::get(std::size_t index) const {
  CUDALIGN_CHECK(index < keys_.size() && live_[index], "SRA row does not exist");
  const RowKey& key = keys_[index];
  std::vector<engine::BusCell> cells(static_cast<std::size_t>(key.end - key.begin + 1));
  std::ifstream is(file_for(index), std::ios::binary);
  CUDALIGN_CHECK(is.good(), "cannot open SRA file for reading");
  read_span(is, std::span<engine::BusCell>(cells));
  read_ += static_cast<std::int64_t>(cells.size() * sizeof(engine::BusCell));
  ++rows_read_;
  return cells;
}

const RowKey& SpecialRowsArea::key(std::size_t index) const {
  CUDALIGN_CHECK(index < keys_.size() && live_[index], "SRA row does not exist");
  return keys_[index];
}

std::vector<std::size_t> SpecialRowsArea::group_members(std::int64_t group) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i] && keys_[i].group == group) members.push_back(i);
  }
  std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
    return keys_[a].position < keys_[b].position;
  });
  return members;
}

void SpecialRowsArea::drop_group(std::int64_t group) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i] && keys_[i].group == group) {
      std::error_code ec;
      std::filesystem::remove(file_for(i), ec);
      live_[i] = false;
      used_ -= sizes_[i];
    }
  }
  if (!keys_.empty()) save_manifest();
}

void SpecialRowsArea::drop_all() {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i]) {
      std::error_code ec;
      std::filesystem::remove(file_for(i), ec);
    }
  }
  keys_.clear();
  live_.clear();
  sizes_.clear();
  used_ = 0;
  save_manifest();
}

}  // namespace cudalign::sra
