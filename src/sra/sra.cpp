#include "sra/sra.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/io_util.hpp"

namespace cudalign::sra {

Index flush_interval_for_budget(Index m, Index n, Index strip_rows, std::int64_t budget_bytes) {
  CUDALIGN_CHECK(m >= 0 && n >= 0 && strip_rows > 0, "invalid matrix geometry");
  const std::int64_t row_bytes = 8 * (n + 1);  // Two 4-byte values per cell (§IV-B).
  CUDALIGN_CHECK(budget_bytes >= row_bytes,
                 "SRA must be at least the size of one special row (paper §IV-B)");
  // ceil(8*m*n / (strip_rows * |SRA|)), clamped to >= 1: the paper's formula
  // with alpha*T = strip_rows.
  const std::int64_t strips = (m + strip_rows - 1) / strip_rows;
  const std::int64_t max_rows = budget_bytes / row_bytes;
  if (max_rows >= strips) return 1;
  return static_cast<Index>((strips + max_rows - 1) / max_rows);
}

namespace {

constexpr std::uint32_t kManifestMagic = 0x53524132;  // "SRA2" (v1 was 0x53524131).
constexpr std::uint32_t kRowMagic = 0x53524157;       // "SRAW"

/// Self-describing header at the start of every row file: a row file torn
/// loose from its store (or handed a stale index) still names exactly what
/// it holds, and the CRC proves the payload is the one that was written.
struct RowFileHeader {
  std::uint32_t magic = kRowMagic;
  std::uint16_t version = kSraFormatVersion;
  std::uint16_t reserved = 0;
  RowKey key;
  std::uint64_t cell_count = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t reserved2 = 0;
};
static_assert(sizeof(RowFileHeader) == 8 + sizeof(RowKey) + 16);

}  // namespace

SpecialRowsArea::SpecialRowsArea(std::filesystem::path directory, std::int64_t budget_bytes,
                                 Durability durability)
    : dir_(std::move(directory)), budget_(budget_bytes), durability_(durability) {
  CUDALIGN_CHECK(budget_ > 0, "SRA budget must be positive");
  std::filesystem::create_directories(dir_);
  if (std::filesystem::exists(dir_ / "manifest.bin")) load_manifest();
  // Sweep torn durable writes: a crash between "write tmp" and "rename" can
  // only leave `*.tmp` files, which no manifest references.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

void SpecialRowsArea::save_manifest() const {
  std::ostringstream buffer(std::ios::binary);
  constexpr std::uint16_t kReserved = 0;
  write_pod(buffer, kManifestMagic);
  write_pod(buffer, kSraFormatVersion);
  write_pod(buffer, kReserved);
  write_pod(buffer, static_cast<std::uint64_t>(keys_.size()));
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    write_pod(buffer, keys_[i]);
    write_pod(buffer, sizes_[i]);
    write_pod(buffer, crcs_[i]);
    // Provably lossless: serializing a bool as a manifest byte, the source
    // domain is {0, 1}.
    write_pod(buffer, static_cast<std::uint8_t>(live_[i] ? 1 : 0));  // cudalint: allow(narrow-cast)
  }
  const std::string bytes = buffer.str();
  const auto manifest = dir_ / "manifest.bin";
  if (durability_ == Durability::kDurable) {
    atomic_write_file_durable(manifest, bytes);
  } else {
    // Write-then-rename keeps the manifest consistent under normal exits;
    // kFast makes no promises about crashes mid-write.
    const auto tmp = dir_ / "manifest.bin.tmp";
    write_file(tmp, bytes);
    std::filesystem::rename(tmp, manifest);
  }
}

void SpecialRowsArea::load_manifest() {
  std::ifstream is(dir_ / "manifest.bin", std::ios::binary);
  CUDALIGN_CHECK(is.good(), "cannot open SRA manifest");
  CUDALIGN_CHECK(read_pod<std::uint32_t>(is) == kManifestMagic,
                 "bad SRA manifest magic (not an SRA store, or a pre-v2 format: "
                 "old stores are refused, not reinterpreted)");
  const auto version = read_pod<std::uint16_t>(is);
  CUDALIGN_CHECK(version == kSraFormatVersion,
                 "SRA store has format version ", version, " but this build reads version ",
                 kSraFormatVersion, " — refusing to reinterpret it");
  (void)read_pod<std::uint16_t>(is);  // Reserved.
  const auto count = read_pod<std::uint64_t>(is);
  keys_.clear();
  sizes_.clear();
  crcs_.clear();
  live_.clear();
  used_ = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    keys_.push_back(read_pod<RowKey>(is));
    sizes_.push_back(read_pod<std::int64_t>(is));
    crcs_.push_back(read_pod<std::uint32_t>(is));
    const bool live = read_pod<std::uint8_t>(is) != 0;
    live_.push_back(live);
    if (live) {
      const auto file = file_for(keys_.size() - 1);
      CUDALIGN_CHECK(std::filesystem::exists(file),
                     "SRA manifest references a missing row file: " + file.string());
      const auto expected =
          static_cast<std::uintmax_t>(sizes_.back()) + sizeof(RowFileHeader);
      const auto actual = std::filesystem::file_size(file);
      CUDALIGN_CHECK(actual == expected, "SRA row file ", file.string(), " is truncated: ",
                     actual, " bytes on disk, expected ", expected);
      used_ += sizes_.back();
    }
  }
  CUDALIGN_CHECK(used_ <= budget_, "recovered SRA exceeds the configured budget");
  peak_ = used_;
  written_ = used_;
}

std::filesystem::path SpecialRowsArea::file_for(std::size_t index) const {
  return dir_ / ("sra-" + std::to_string(index) + ".bin");
}

std::size_t SpecialRowsArea::put(const RowKey& key, std::span<const engine::BusCell> cells) {
  CUDALIGN_CHECK(key.end - key.begin + 1 == static_cast<Index>(cells.size()),
                 "special row cell count does not match its key range");
  const auto bytes = static_cast<std::int64_t>(cells.size_bytes());
  CUDALIGN_CHECK(used_ + bytes <= budget_,
                 "SRA budget exceeded; flush interval was sized incorrectly");
  const std::size_t index = keys_.size();

  RowFileHeader header;
  header.key = key;
  header.cell_count = cells.size();
  header.payload_crc = common::crc32(cells.data(), cells.size_bytes());

  const auto file = file_for(index);
  if (durability_ == Durability::kDurable) {
    std::string buffer(sizeof(header) + cells.size_bytes(), '\0');
    std::memcpy(buffer.data(), &header, sizeof(header));
    std::memcpy(buffer.data() + sizeof(header), cells.data(), cells.size_bytes());
    std::filesystem::path tmp = file;
    tmp += ".tmp";
    write_file_durable(tmp, buffer.data(), buffer.size());
    replace_file_durable(tmp, file);
  } else {
    std::ofstream os(file, std::ios::binary | std::ios::trunc);
    CUDALIGN_CHECK(os.good(), "cannot open SRA file for writing");
    write_pod(os, header);
    write_span(os, cells);
  }
  keys_.push_back(key);
  live_.push_back(true);
  sizes_.push_back(bytes);
  crcs_.push_back(header.payload_crc);
  used_ += bytes;
  written_ += bytes;
  peak_ = std::max(peak_, used_);
  save_manifest();
  return index;
}

std::vector<engine::BusCell> SpecialRowsArea::get(std::size_t index) const {
  CUDALIGN_CHECK(index < keys_.size() && live_[index], "SRA row does not exist");
  const RowKey& key = keys_[index];
  const auto file = file_for(index);
  std::ifstream is(file, std::ios::binary);
  CUDALIGN_CHECK(is.good(), "cannot open SRA file for reading: " + file.string());
  const auto header = read_pod<RowFileHeader>(is);
  CUDALIGN_CHECK(header.magic == kRowMagic, "SRA row file ", file.string(),
                 " has a bad magic — not an SRA row");
  CUDALIGN_CHECK(header.version == kSraFormatVersion, "SRA row file ", file.string(),
                 " has format version ", header.version, ", expected ", kSraFormatVersion);
  CUDALIGN_CHECK(header.key.position == key.position && header.key.begin == key.begin &&
                     header.key.end == key.end && header.key.group == key.group,
                 "SRA row file ", file.string(), " describes a different row than the manifest");
  CUDALIGN_CHECK(header.cell_count == static_cast<std::uint64_t>(key.end - key.begin + 1),
                 "SRA row file ", file.string(), " cell count does not match its key range");
  std::vector<engine::BusCell> cells(static_cast<std::size_t>(key.end - key.begin + 1));
  read_span(is, std::span<engine::BusCell>(cells));
  const std::uint32_t crc = common::crc32(cells.data(), cells.size() * sizeof(engine::BusCell));
  CUDALIGN_CHECK(crc == header.payload_crc && crc == crcs_[index],
                 "SRA row file ", file.string(),
                 " failed its CRC-32 check — the payload on disk is corrupt");
  read_ += static_cast<std::int64_t>(cells.size() * sizeof(engine::BusCell));
  ++rows_read_;
  return cells;
}

const RowKey& SpecialRowsArea::key(std::size_t index) const {
  CUDALIGN_CHECK(index < keys_.size() && live_[index], "SRA row does not exist");
  return keys_[index];
}

std::vector<std::size_t> SpecialRowsArea::group_members(std::int64_t group) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i] && keys_[i].group == group) members.push_back(i);
  }
  std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
    return keys_[a].position < keys_[b].position;
  });
  return members;
}

void SpecialRowsArea::remove_row_file(std::size_t index) {
  std::error_code ec;
  std::filesystem::remove(file_for(index), ec);
  live_[index] = false;
  used_ -= sizes_[index];
}

void SpecialRowsArea::drop_row(std::size_t index) {
  CUDALIGN_CHECK(index < keys_.size() && live_[index], "SRA row does not exist");
  remove_row_file(index);
  save_manifest();
}

void SpecialRowsArea::drop_group(std::int64_t group) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i] && keys_[i].group == group) remove_row_file(i);
  }
  if (!keys_.empty()) save_manifest();
}

void SpecialRowsArea::drop_all() {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (live_[i]) {
      std::error_code ec;
      std::filesystem::remove(file_for(i), ec);
    }
  }
  keys_.clear();
  live_.clear();
  sizes_.clear();
  crcs_.clear();
  used_ = 0;
  save_manifest();
}

}  // namespace cudalign::sra
