#include "sra/async_writer.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace cudalign::sra {

AsyncSraWriter::AsyncSraWriter(SpecialRowsArea& area, std::size_t queue_capacity)
    : area_(area), capacity_(std::max<std::size_t>(1, queue_capacity)) {
  writer_ = std::thread([this] { writer_loop(); });
}

AsyncSraWriter::~AsyncSraWriter() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

void AsyncSraWriter::stage(const RowKey& key, std::span<const engine::BusCell> cells) {
  CUDALIGN_CHECK(!staged_.has_value(),
                 "AsyncSraWriter::stage called twice without an intervening commit");
  StagedRow row;
  row.key = key;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!free_buffers_.empty()) {
      row.cells = std::move(free_buffers_.back());
      free_buffers_.pop_back();
    }
  }
  // The copy runs outside the lock: it is the bulk of the staging cost and
  // must not serialize against the writer's retire path.
  row.cells.assign(cells.begin(), cells.end());
  staged_.emplace(std::move(row));
}

void AsyncSraWriter::commit(std::function<void()> on_durable) {
  CUDALIGN_CHECK(staged_.has_value(), "AsyncSraWriter::commit without a staged row");
  StagedRow row = std::move(*staged_);
  staged_.reset();
  row.on_durable = std::move(on_durable);
  std::unique_lock<std::mutex> lock(mutex_);
  if (failure_ == nullptr && queue_.size() >= capacity_) {
    Timer wait;
    space_cv_.wait(lock, [&] { return failure_ != nullptr || queue_.size() < capacity_; });
    stats_.submit_wait_seconds += wait.seconds();
  }
  ++stats_.rows_submitted;
  if (failure_ != nullptr) {
    // Poisoned: drop the row — nothing may be written past a failed one, and
    // drain() will surface the failure to the submitter.
    return;
  }
  queue_.push_back(std::move(row));
  stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  work_cv_.notify_one();
}

void AsyncSraWriter::submit(const RowKey& key, std::span<const engine::BusCell> cells,
                            std::function<void()> on_durable) {
  stage(key, cells);
  commit(std::move(on_durable));
}

void AsyncSraWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return failure_ != nullptr || (queue_.empty() && !writing_); });
  if (failure_ != nullptr) std::rethrow_exception(failure_);
}

AsyncWriterStats AsyncSraWriter::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void AsyncSraWriter::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || failure_ != nullptr || !queue_.empty(); });
    if (failure_ != nullptr || queue_.empty()) return;  // Poisoned, or stop + drained.
    StagedRow row = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    lock.unlock();
    std::exception_ptr error;
    Timer busy;
    try {
      area_.put(row.key, row.cells);
      // Durable ack: put() has completed the CRC'd write (+ fsync protocol in
      // durable mode), so the checkpoint cursor may now advance past this row.
      if (row.on_durable) row.on_durable();
    } catch (...) {
      error = std::current_exception();
    }
    const double busy_seconds = busy.seconds();
    lock.lock();
    writing_ = false;
    stats_.writer_busy_seconds += busy_seconds;
    if (error == nullptr) {
      ++stats_.rows_acked;
      row.cells.clear();
      free_buffers_.push_back(std::move(row.cells));
    } else {
      failure_ = error;
      // Preserve the cursor's prefix property: later rows must not land on
      // disk past a failed one. Recycling is pointless now; just drop them.
      queue_.clear();
    }
    space_cv_.notify_all();
    idle_cv_.notify_all();
    if (error != nullptr) return;
  }
}

}  // namespace cudalign::sra
